module Graph = Cr_metric.Graph
module Trace = Cr_obs.Trace

type 'msg envelope = {
  dst : int;
  payload : 'msg;
}

type ('msg, 'state) t = {
  graph : Graph.t;
  states : 'state array;
  queue : 'msg envelope Pqueue.t;
  jitter : (int64 ref * float) option;
  obs : Trace.context;
  deliveries : int array;  (* messages delivered per node *)
  rounds : (int, int) Hashtbl.t;  (* floor(delivery time) -> deliveries *)
  mutable seq : int;
  mutable now : float;
  mutable messages : int;
  mutable makespan : float;
}

type 'msg actions = {
  now : float;
  send : int -> 'msg -> unit;
}

type stats = {
  messages : int;
  makespan : float;
}

(* splitmix64 step for the jitter stream (self-contained, deterministic) *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?obs ?jitter graph ~init =
  { graph;
    states = Array.init (Graph.n graph) init;
    queue = Pqueue.create ();
    jitter =
      Option.map
        (fun (seed, magnitude) ->
          if magnitude < 0.0 then
            invalid_arg "Network.create: negative jitter magnitude";
          (ref (Int64.of_int (seed + 1)), magnitude))
        jitter;
    obs = Trace.resolve obs;
    deliveries = Array.make (Graph.n graph) 0;
    rounds = Hashtbl.create 64;
    seq = 0;
    now = 0.0;
    messages = 0;
    makespan = 0.0 }

let perturb t delay =
  match t.jitter with
  | None -> delay
  | Some (state, magnitude) ->
    let u =
      Int64.to_float (Int64.shift_right_logical (splitmix state) 11)
      /. 9007199254740992.0
    in
    delay *. (1.0 +. (magnitude *. u))

let state t v = t.states.(v)

let deliveries t = Array.copy t.deliveries

let round_histogram t = Cr_metric.Tbl.sorted_bindings ~cmp:Int.compare t.rounds

let enqueue t ~time ~dst payload =
  Pqueue.push t.queue ~time ~seq:t.seq { dst; payload };
  t.seq <- t.seq + 1

let inject t ~dst msg = enqueue t ~time:t.now ~dst msg

let run t ~handler ~max_messages =
  while not (Pqueue.is_empty t.queue) do
    let time, { dst; payload } = Pqueue.pop_min t.queue in
    t.now <- time;
    t.messages <- t.messages + 1;
    t.makespan <- Float.max t.makespan time;
    if t.messages > max_messages then
      failwith "Network.run: message budget exhausted";
    t.deliveries.(dst) <- t.deliveries.(dst) + 1;
    let round = int_of_float (Float.floor time) in
    (match Hashtbl.find_opt t.rounds round with
    | Some c -> Hashtbl.replace t.rounds round (c + 1)
    | None -> Hashtbl.add t.rounds round 1);
    if Trace.enabled t.obs then
      Trace.message t.obs ~node:dst ~round ~time;
    let send neighbor msg =
      match Graph.edge_weight t.graph dst neighbor with
      | None -> invalid_arg "Network.send: not a neighbor"
      | Some w -> enqueue t ~time:(time +. perturb t w) ~dst:neighbor msg
    in
    t.states.(dst) <-
      handler { now = time; send } ~self:dst t.states.(dst) payload
  done;
  if Trace.enabled t.obs then begin
    Trace.counter t.obs "network.messages" (float_of_int t.messages);
    Trace.counter t.obs "network.makespan" t.makespan
  end;
  { messages = t.messages; makespan = t.makespan }
