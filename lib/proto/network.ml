module Graph = Cr_metric.Graph
module Trace = Cr_obs.Trace
module Cost = Cr_obs.Cost

type kind =
  | Edge_msg of int  (* sending neighbor *)
  | Timer_msg
  | External_msg

type 'msg envelope = {
  dst : int;
  payload : 'msg;
  kind : kind;
}

type fault_hooks = {
  copies : src:int -> dst:int -> delay:float -> float list;
  down_until : node:int -> time:float -> float option;
}

type fault_counts = {
  sent_dropped : int;
  sent_duplicated : int;
  sent_delayed : int;
  crash_lost : int;
  timers_deferred : int;
}

let no_fault_counts =
  { sent_dropped = 0; sent_duplicated = 0; sent_delayed = 0; crash_lost = 0;
    timers_deferred = 0 }

type ('msg, 'state) t = {
  graph : Graph.t;
  states : 'state array;
  queue : 'msg envelope Pqueue.t;
  jitter : (int64 ref * float) option;
  hooks : fault_hooks option;
  obs : Trace.context;
  cost : Cost.t;
  measure : ('msg -> int) option;
  deliveries : int array;  (* messages delivered per node *)
  rounds : (int, int) Hashtbl.t;  (* floor(delivery time) -> deliveries *)
  mutable seq : int;
  mutable now : float;
  mutable messages : int;
  mutable timers : int;
  mutable makespan : float;
  mutable faults : fault_counts;
}

type 'msg actions = {
  now : float;
  send : int -> 'msg -> unit;
  timer : delay:float -> 'msg -> unit;
}

type stats = {
  messages : int;
  makespan : float;
}

type protocol_error = {
  protocol : string;
  node : int option;
  stats : stats;
  detail : string;
}

exception Protocol_error of protocol_error

let error_message e =
  Printf.sprintf "%s:%s %s (after %d deliveries, makespan %g)" e.protocol
    (match e.node with Some v -> Printf.sprintf " node %d:" v | None -> "")
    e.detail e.stats.messages e.stats.makespan

let () =
  Printexc.register_printer (function
    | Protocol_error e -> Some ("Protocol_error: " ^ error_message e)
    | _ -> None)

(* splitmix64 step for the jitter stream (self-contained, deterministic) *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?obs ?jitter ?faults ?(cost = Cost.null) ?measure graph ~init =
  { graph;
    states = Array.init (Graph.n graph) init;
    queue = Pqueue.create ();
    jitter =
      Option.map
        (fun (seed, magnitude) ->
          if magnitude < 0.0 then
            invalid_arg "Network.create: negative jitter magnitude";
          (ref (Int64.of_int (seed + 1)), magnitude))
        jitter;
    hooks = faults;
    obs = Trace.resolve obs;
    cost;
    measure;
    deliveries = Array.make (Graph.n graph) 0;
    rounds = Hashtbl.create 64;
    seq = 0;
    now = 0.0;
    messages = 0;
    timers = 0;
    makespan = 0.0;
    faults = no_fault_counts }

let perturb t delay =
  match t.jitter with
  | None -> delay
  | Some (state, magnitude) ->
    let u =
      Int64.to_float (Int64.shift_right_logical (splitmix state) 11)
      /. 9007199254740992.0
    in
    delay *. (1.0 +. (magnitude *. u))

let state t v = t.states.(v)

let deliveries t = Array.copy t.deliveries

let fault_counts t = t.faults

let timer_events t = t.timers

let round_histogram t = Cr_metric.Tbl.sorted_bindings ~cmp:Int.compare t.rounds

(* Every enqueue — sends (and their fault-injected duplicate copies),
   timers, injects — draws from the one global sequence counter at enqueue
   time, so the (delivery time, send order) tie-break is total and
   identical however a message entered the simulator. *)
let enqueue t ~time ~dst ~kind payload =
  Pqueue.push t.queue ~time ~seq:t.seq { dst; payload; kind };
  t.seq <- t.seq + 1

let inject t ~dst msg = enqueue t ~time:t.now ~dst ~kind:External_msg msg

(* A send crosses the fault layer: the plan may drop the message, deliver
   extra copies, or inflate individual copy delays. Every surviving copy is
   sequenced immediately (send order), never at delivery time. *)
let faulted_send t ~src ~dst ~delay msg =
  match t.hooks with
  | None -> enqueue t ~time:(t.now +. delay) ~dst ~kind:(Edge_msg src) msg
  | Some hooks ->
    let delays = hooks.copies ~src ~dst ~delay in
    let copies = List.length delays in
    let f = t.faults in
    if copies = 0 then t.faults <- { f with sent_dropped = f.sent_dropped + 1 }
    else begin
      if copies > 1 then
        t.faults <-
          { t.faults with
            sent_duplicated = t.faults.sent_duplicated + copies - 1 };
      if List.exists (fun d -> d > delay) delays then
        t.faults <- { t.faults with sent_delayed = t.faults.sent_delayed + 1 };
      List.iter
        (fun d ->
          if d < delay then
            invalid_arg "Network: fault plan shrank a delivery delay";
          enqueue t ~time:(t.now +. d) ~dst ~kind:(Edge_msg src) msg)
        delays
    end

let down_until t ~node ~time =
  match t.hooks with
  | None -> None
  | Some hooks -> hooks.down_until ~node ~time

let run ?(protocol = "network") (t : (_, _) t) ~handler ~max_messages =
  let budget_error dst =
    raise
      (Protocol_error
         { protocol;
           node = Some dst;
           stats = { messages = t.messages; makespan = t.makespan };
           detail =
             Printf.sprintf "message budget exhausted (max %d)" max_messages })
  in
  while not (Pqueue.is_empty t.queue) do
    let time, { dst; payload; kind } = Pqueue.pop_min t.queue in
    t.now <- time;
    let deliverable =
      match kind with
      | Timer_msg | External_msg -> (
        (* a down node's timers and boot injections are deferred to its
           recovery, not lost: retransmission daemons and program starts
           survive a crash-recover *)
        match down_until t ~node:dst ~time with
        | None -> true
        | Some recovery ->
          t.faults <-
            { t.faults with timers_deferred = t.faults.timers_deferred + 1 };
          enqueue t ~time:(Float.max recovery time) ~dst ~kind payload;
          false)
      | Edge_msg _ -> (
        match down_until t ~node:dst ~time with
        | None -> true
        | Some _ ->
          (* the node is down: the edge message is lost; a hardened
             transport must retransmit it past the recovery *)
          t.faults <- { t.faults with crash_lost = t.faults.crash_lost + 1 };
          false)
    in
    if deliverable then begin
      (match kind with
      | Timer_msg ->
        t.timers <- t.timers + 1;
        t.makespan <- Float.max t.makespan time;
        if t.messages + t.timers > max_messages then budget_error dst
      | Edge_msg _ | External_msg ->
        t.messages <- t.messages + 1;
        t.makespan <- Float.max t.makespan time;
        if t.messages + t.timers > max_messages then budget_error dst;
        t.deliveries.(dst) <- t.deliveries.(dst) + 1;
        let round = int_of_float (Float.floor time) in
        (match Hashtbl.find_opt t.rounds round with
        | Some c -> Hashtbl.replace t.rounds round (c + 1)
        | None -> Hashtbl.add t.rounds round 1);
        if Trace.enabled t.obs then
          Trace.message t.obs ~node:dst ~round ~time;
        if Cost.enabled t.cost then begin
          (* CONGEST accounting: charge the delivery to its construction
             phase (the protocol tag) and round; edge traffic (never
             external injections) is also charged to its undirected edge,
             sized by the protocol's measured wire encoding. *)
          let bits =
            match t.measure with Some f -> f payload | None -> 0
          in
          let src = match kind with Edge_msg s -> s | _ -> -1 in
          Cost.record t.cost ~phase:protocol ~src ~dst ~round ~bits
        end);
      let send neighbor msg =
        match Graph.edge_weight t.graph dst neighbor with
        | None -> invalid_arg "Network.send: not a neighbor"
        | Some w -> faulted_send t ~src:dst ~dst:neighbor ~delay:(perturb t w) msg
      in
      let timer ~delay msg =
        if delay < 0.0 then invalid_arg "Network.timer: negative delay";
        enqueue t ~time:(time +. delay) ~dst ~kind:Timer_msg msg
      in
      t.states.(dst) <- handler { now = time; send; timer } ~self:dst t.states.(dst) payload
    end
  done;
  if Trace.enabled t.obs then begin
    Trace.counter t.obs "network.messages" (float_of_int t.messages);
    Trace.counter t.obs "network.makespan" t.makespan;
    (* only when the plan actually perturbed something: an inert (null)
       plan must leave the trace byte-identical to a fault-free run *)
    if t.faults <> no_fault_counts then begin
      Trace.counter t.obs "network.faults.dropped"
        (float_of_int t.faults.sent_dropped);
      Trace.counter t.obs "network.faults.duplicated"
        (float_of_int t.faults.sent_duplicated);
      Trace.counter t.obs "network.faults.crash_lost"
        (float_of_int t.faults.crash_lost)
    end
  end;
  { messages = t.messages; makespan = t.makespan }

(* First-class protocol execution: concrete protocols describe themselves
   as (init, handler, kickoff) and a runner decides how the messages
   actually travel — the plain simulator below, or a hardened transport
   (Cr_fault.Reliable) layered over a fault plan. *)

type runner = {
  execute :
    'msg 'state.
    ?measure:('msg -> int) ->
    Graph.t ->
    protocol:string ->
    init:(int -> 'state) ->
    handler:('msg actions -> self:int -> 'state -> 'msg -> 'state) ->
    kickoff:(int * 'msg) list ->
    max_messages:int ->
    'state array * stats;
}

let local ?obs ?jitter ?cost () =
  { execute =
      (fun ?measure g ~protocol ~init ~handler ~kickoff ~max_messages ->
        let net = create ?obs ?jitter ?cost ?measure g ~init in
        List.iter (fun (dst, msg) -> inject net ~dst msg) kickoff;
        let stats = run ~protocol net ~handler ~max_messages in
        (Array.init (Graph.n g) (state net), stats)) }
