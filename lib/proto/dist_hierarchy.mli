(** Fully distributed construction of the 2^i-net hierarchy of Section 2.

    Levels are elected top-down: the top net is the singleton {0} (the
    minimum id, which a trivial min-flood would elect; we fix it by
    convention), and each level i's r-net election is seeded with level
    i+1's members — exactly mirroring the centralized greedy construction,
    so the result provably *equals* [Cr_nets.Hierarchy.build]'s nets (the
    test suite asserts this). The per-level message counts cost out the
    hierarchy preprocessing in the asynchronous message-passing model. *)

type level_cost = {
  level : int;
  members : int;
  messages : int;
  makespan : float;
}

type result = {
  nets : int list array;  (** nets.(i) = Y_i, ascending ids *)
  costs : level_cost list;  (** per elected level, topmost first *)
  total_messages : int;
}

(** [build m] runs the elections over the metric's graph; levels and radii
    match [Cr_nets.Hierarchy.build m]. [via] selects the transport for
    every election (default: the plain local simulator). *)
val build : ?via:Network.runner -> Cr_metric.Metric.t -> result
