module Graph = Cr_metric.Graph
module Tbl = Cr_metric.Tbl

type status =
  | In
  | Out

type result = {
  net : int list;
  status : status array;
  nearest_in : (int * float) option array;
  discovery : Network.stats;
  election : Network.stats;
}

(* Phase 1: budgeted flooding of ids (with a seed flag). State: best known
   distance and seed-ness per origin (strictly within r). *)
type hello = Hello of { origin : int; seed : bool; traveled : float }

let discovery_phase g ~r ~is_seed ~jitter ~max_messages =
  let net =
    Network.create ?jitter g
      ~init:(fun _ : (int, bool * float) Hashtbl.t -> Hashtbl.create 8)
  in
  let handler (actions : hello Network.actions) ~self known
      (Hello { origin; seed; traveled }) =
    let best = Hashtbl.find_opt known origin in
    if
      traveled < r
      && (match best with None -> true | Some (_, d) -> traveled < d)
    then begin
      Hashtbl.replace known origin (seed, traveled);
      Graph.iter_neighbors g self (fun v w ->
          if traveled +. w < r then
            actions.Network.send v
              (Hello { origin; seed; traveled = traveled +. w }))
    end;
    known
  in
  for v = 0 to Graph.n g - 1 do
    Network.inject net ~dst:v
      (Hello { origin = v; seed = is_seed v; traveled = 0.0 })
  done;
  let stats = Network.run net ~handler ~max_messages in
  let known =
    Array.init (Graph.n g) (fun v ->
        let tbl = Network.state net v in
        Hashtbl.remove tbl v;  (* self-knowledge is implicit *)
        tbl)
  in
  (known, stats)

(* Phase 2: decisions flood within the same radius. *)
type verdict =
  | V_in
  | V_out

type decision =
  | Check
  | Decision of { origin : int; verdict : verdict; traveled : float }

type node_state = {
  mutable status : status option;
  heard : (int, verdict * float) Hashtbl.t;  (* decisions, best distance *)
  seen : (int, float) Hashtbl.t;  (* flood dedup: best traveled per origin *)
}

let election_phase g ~r ~known ~is_seed ~jitter ~max_messages =
  let n = Graph.n g in
  let net =
    Network.create ?jitter g ~init:(fun _ ->
        { status = None; heard = Hashtbl.create 8; seen = Hashtbl.create 8 })
  in
  (* Seeds are already members: a non-seed must wait only for non-seed
     smaller ids (seeds block it outright, at any id). *)
  let smaller_in_range self =
    Tbl.fold_sorted ~cmp:Int.compare
      (fun o (seed, _) acc ->
        if (not seed) && o < self then o :: acc else acc)
      known.(self) []
  in
  let seed_in_range self =
    Tbl.fold_sorted ~cmp:Int.compare
      (fun _ (seed, _) acc -> acc || seed)
      known.(self) false
  in
  let flood_own (actions : decision Network.actions) self verdict =
    Graph.iter_neighbors g self (fun v w ->
        if w < r then
          actions.Network.send v
            (Decision { origin = self; verdict; traveled = w }))
  in
  let try_decide actions self state =
    if state.status = None then begin
      if is_seed self then begin
        state.status <- Some In;
        flood_own actions self V_in
      end
      else begin
        let blocked =
          seed_in_range self
          || Tbl.fold_sorted ~cmp:Int.compare
               (fun _ (verdict, _) acc -> acc || verdict = V_in)
               state.heard false
        in
        if blocked then begin
          state.status <- Some Out;
          flood_own actions self V_out
        end
        else begin
          let pending =
            List.filter
              (fun o -> not (Hashtbl.mem state.heard o))
              (smaller_in_range self)
          in
          if pending = [] then begin
            state.status <- Some In;
            flood_own actions self V_in
          end
        end
      end
    end
  in
  let handler (actions : decision Network.actions) ~self state = function
    | Check ->
      try_decide actions self state;
      state
    | Decision { origin; verdict; traveled } ->
      let best = Hashtbl.find_opt state.seen origin in
      if traveled < r && (best = None || traveled < Option.get best) then begin
        Hashtbl.replace state.seen origin traveled;
        (match Hashtbl.find_opt state.heard origin with
        | Some (_, d) when d <= traveled -> ()
        | _ -> Hashtbl.replace state.heard origin (verdict, traveled));
        Graph.iter_neighbors g self (fun v w ->
            if traveled +. w < r then
              actions.Network.send v
                (Decision { origin; verdict; traveled = traveled +. w }))
      end;
      try_decide actions self state;
      state
  in
  for v = 0 to n - 1 do
    Network.inject net ~dst:v Check
  done;
  let stats = Network.run net ~handler ~max_messages in
  (Array.init n (fun v -> Network.state net v), stats)

let run ?max_messages ?jitter ?(seeds = []) g ~r =
  if r <= 0.0 then invalid_arg "Net_election.run: r must be positive";
  let n = Graph.n g in
  let max_messages =
    match max_messages with
    | Some m -> m
    | None -> 1000 + (200 * n * n)
  in
  let seed_flags = Array.make n false in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Net_election.run: seed out of range";
      seed_flags.(s) <- true)
    seeds;
  let is_seed v = seed_flags.(v) in
  let known, discovery = discovery_phase g ~r ~is_seed ~jitter ~max_messages in
  let states, election =
    election_phase g ~r ~known ~is_seed ~jitter ~max_messages
  in
  let status =
    Array.map
      (fun s ->
        match s.status with
        | Some st -> st
        | None -> failwith "Net_election.run: protocol did not quiesce")
      states
  in
  let net_members = ref [] in
  for v = n - 1 downto 0 do
    if status.(v) = In then net_members := v :: !net_members
  done;
  let nearest_in =
    Array.mapi
      (fun v s ->
        if status.(v) = In then Some (v, 0.0)
        else
          (* keep-first over ascending ids: equal distances tie-break
             toward the least member id, independent of hash order *)
          Tbl.fold_sorted ~cmp:Int.compare
            (fun o (verdict, d) acc ->
              if verdict = V_in then
                match acc with
                | Some (_, best) when best <= d -> acc
                | _ -> Some (o, d)
              else acc)
            s.heard None)
      states
  in
  { net = !net_members; status; nearest_in; discovery; election }
