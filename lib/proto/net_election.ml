module Graph = Cr_metric.Graph
module Tbl = Cr_metric.Tbl

type status =
  | In
  | Out

type result = {
  net : int list;
  status : status array;
  nearest_in : (int * float) option array;
  discovery : Network.stats;
  election : Network.stats;
}

(* Phase 1: budgeted flooding of ids (with a seed flag). State: best known
   distance and seed-ness per origin (strictly within r). *)
type hello = Hello of { origin : int; seed : bool; traveled : float }

let measure_hello g =
  let n = Graph.n g in
  fun (Hello { origin; seed; traveled }) ->
    Wire.measure (fun w ->
        Wire.push_node w ~n origin;
        Wire.push_bool w seed;
        Wire.push_float w traveled)

let discovery_phase g ~label ~r ~is_seed ~runner ~max_messages =
  let n = Graph.n g in
  let handler (actions : hello Network.actions) ~self known
      (Hello { origin; seed; traveled }) =
    let best = Hashtbl.find_opt known origin in
    if
      traveled < r
      && (match best with None -> true | Some (_, d) -> traveled < d)
    then begin
      Hashtbl.replace known origin (seed, traveled);
      Graph.iter_neighbors g self (fun v w ->
          if traveled +. w < r then
            actions.Network.send v
              (Hello { origin; seed; traveled = traveled +. w }))
    end;
    known
  in
  let kickoff =
    List.init n (fun v ->
        (v, Hello { origin = v; seed = is_seed v; traveled = 0.0 }))
  in
  let known, stats =
    runner.Network.execute ~measure:(measure_hello g) g
      ~protocol:(label ^ ".discovery")
      ~init:(fun _ : (int, bool * float) Hashtbl.t -> Hashtbl.create 8)
      ~handler ~kickoff ~max_messages
  in
  Array.iteri (fun v tbl -> Hashtbl.remove tbl v) known;
  (* self-knowledge is implicit *)
  (known, stats)

(* Phase 2: decisions flood within the same radius. *)
type verdict =
  | V_in
  | V_out

type decision =
  | Check
  | Decision of { origin : int; verdict : verdict; traveled : float }

let measure_decision g =
  let n = Graph.n g in
  fun msg ->
    Wire.measure (fun w ->
        match msg with
        | Check -> Wire.push_tag w ~cases:2 0
        | Decision { origin; verdict; traveled } ->
          Wire.push_tag w ~cases:2 1;
          Wire.push_node w ~n origin;
          Wire.push_bool w (verdict = V_in);
          Wire.push_float w traveled)

type node_state = {
  mutable status : status option;
  heard : (int, verdict * float) Hashtbl.t;  (* decisions, best distance *)
  seen : (int, float) Hashtbl.t;  (* flood dedup: best traveled per origin *)
  mutable pending : int;  (* smaller-id non-seeds in range not yet heard *)
  mutable heard_in : bool;  (* some decision in [heard] is V_in *)
}

let election_phase g ~label ~r ~known ~is_seed ~runner ~max_messages =
  let n = Graph.n g in
  (* The in-range id sets are static after phase 1, so the wait-for-smaller
     predicate is precomputed per node and maintained as an O(1) counter:
     re-folding [known]/[heard] per delivered message turned the election
     quadratic per delivery (minutes on grid-32x32). Seeds are already
     members: a non-seed must wait only for non-seed smaller ids (seeds
     block it outright, at any id). *)
  let seed_in_range =
    Array.init n (fun v ->
        Tbl.fold_sorted ~cmp:Int.compare
          (fun _ (seed, _) acc -> acc || seed)
          known.(v) false)
  in
  let smaller_count =
    Array.init n (fun v ->
        Tbl.fold_sorted ~cmp:Int.compare
          (fun o (seed, _) acc ->
            if (not seed) && o < v then acc + 1 else acc)
          known.(v) 0)
  in
  let flood_own (actions : decision Network.actions) self verdict =
    Graph.iter_neighbors g self (fun v w ->
        if w < r then
          actions.Network.send v
            (Decision { origin = self; verdict; traveled = w }))
  in
  let try_decide actions self state =
    if state.status = None then begin
      if is_seed self then begin
        state.status <- Some In;
        flood_own actions self V_in
      end
      else if seed_in_range.(self) || state.heard_in then begin
        state.status <- Some Out;
        flood_own actions self V_out
      end
      else if state.pending = 0 then begin
        state.status <- Some In;
        flood_own actions self V_in
      end
    end
  in
  let record_heard self state origin verdict traveled =
    match Hashtbl.find_opt state.heard origin with
    | Some (_, d) ->
      (* a node floods exactly one verdict; only the distance can improve *)
      if traveled < d then Hashtbl.replace state.heard origin (verdict, traveled)
    | None ->
      Hashtbl.replace state.heard origin (verdict, traveled);
      if verdict = V_in then state.heard_in <- true;
      (match Hashtbl.find_opt known.(self) origin with
      | Some (false, _) when origin < self -> state.pending <- state.pending - 1
      | _ -> ())
  in
  let handler (actions : decision Network.actions) ~self state = function
    | Check ->
      try_decide actions self state;
      state
    | Decision { origin; verdict; traveled } ->
      let best = Hashtbl.find_opt state.seen origin in
      if traveled < r && (best = None || traveled < Option.get best) then begin
        Hashtbl.replace state.seen origin traveled;
        record_heard self state origin verdict traveled;
        Graph.iter_neighbors g self (fun v w ->
            if traveled +. w < r then
              actions.Network.send v
                (Decision { origin; verdict; traveled = traveled +. w }))
      end;
      try_decide actions self state;
      state
  in
  let kickoff = List.init n (fun v -> (v, Check)) in
  runner.Network.execute ~measure:(measure_decision g) g
    ~protocol:(label ^ ".election")
    ~init:(fun v ->
      { status = None;
        heard = Hashtbl.create 8;
        seen = Hashtbl.create 8;
        pending = smaller_count.(v);
        heard_in = false })
    ~handler ~kickoff ~max_messages

let run ?max_messages ?jitter ?via ?(seeds = []) ?(label = "net_election") g ~r =
  if r <= 0.0 then invalid_arg "Net_election.run: r must be positive";
  let n = Graph.n g in
  let max_messages =
    match max_messages with
    | Some m -> m
    | None -> 1000 + (200 * n * n)
  in
  let runner =
    match via with Some rn -> rn | None -> Network.local ?jitter ()
  in
  let seed_flags = Array.make n false in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Net_election.run: seed out of range";
      seed_flags.(s) <- true)
    seeds;
  let is_seed v = seed_flags.(v) in
  let known, discovery =
    discovery_phase g ~label ~r ~is_seed ~runner ~max_messages
  in
  let states, election =
    election_phase g ~label ~r ~known ~is_seed ~runner ~max_messages
  in
  let status =
    Array.mapi
      (fun v s ->
        match s.status with
        | Some st -> st
        | None ->
          raise
            (Network.Protocol_error
               { protocol = label;
                 node = Some v;
                 stats = election;
                 detail = "protocol did not quiesce" }))
      states
  in
  let net_members = ref [] in
  for v = n - 1 downto 0 do
    if status.(v) = In then net_members := v :: !net_members
  done;
  let nearest_in =
    Array.mapi
      (fun v s ->
        if status.(v) = In then Some (v, 0.0)
        else
          (* keep-first over ascending ids: equal distances tie-break
             toward the least member id, independent of hash order *)
          Tbl.fold_sorted ~cmp:Int.compare
            (fun o (verdict, d) acc ->
              if verdict = V_in then
                match acc with
                | Some (_, best) when best <= d -> acc
                | _ -> Some (o, d)
              else acc)
            s.heard None)
      states
  in
  { net = !net_members; status; nearest_in; discovery; election }
