(** Distributed selection of netting-tree parents.

    After the hierarchy elections (Dist_hierarchy), each net point of Y_i
    must learn its parent in the netting tree: the nearest member of
    Y_(i+1), ties to the least id (Section 2's zooming-sequence rule). The
    protocol is a bounded flood: every Y_(i+1) member announces itself
    within radius 2^(i+1) (inclusive — the covering bound guarantees the
    true nearest is within that budget), and every node keeps the
    lexicographically least (distance, id) announcement it hears.

    Together with Dist_hierarchy this makes the whole hierarchical skeleton
    of the schemes constructible in-network; only the DFS label assignment
    (a single token traversal of the finished tree, n messages) remains a
    centralized step here. The test suite asserts exact agreement with
    [Cr_nets.Netting_tree]'s parents. *)

type result = {
  parent : int array;
      (** parent.(x) = nearest Y_(i+1) member for x in Y_i; -1 elsewhere *)
  stats : Network.stats;
}

(** [parents_for_level m ~members ~upper ~radius] runs one level's
    announcements: [upper] (the level-(i+1) net) floods within [radius]
    (inclusive) and every node of [members] records its choice. [via]
    selects the transport (default [Network.local ?jitter ()]); [label]
    (default ["dist_netting"]) is the protocol tag cost accounting and
    errors report — [all_parents] passes ["dist_netting.l<i>"] per
    level. Raises [Network.Protocol_error] (protocol [<label>]) if a
    member heard no announcement — a covering-bound violation. *)
val parents_for_level :
  ?max_messages:int ->
  ?jitter:int * float ->
  ?via:Network.runner ->
  ?label:string ->
  Cr_metric.Metric.t ->
  members:int list ->
  upper:int list ->
  radius:float ->
  result

(** [all_parents m] runs every level of the hierarchy of [m] and returns
    parents.(i).(x) for x in Y_i (computed with a fresh Dist_hierarchy
    election over the same [via] transport), with total message
    statistics. *)
val all_parents :
  ?via:Network.runner -> Cr_metric.Metric.t -> int array array * Network.stats
