module Metric = Cr_metric.Metric

type level_cost = {
  level : int;
  members : int;
  messages : int;
  makespan : float;
}

type result = {
  nets : int list array;
  costs : level_cost list;
  total_messages : int;
}

let build ?via m =
  let g = Metric.graph m in
  let n = Metric.n m in
  let top = Metric.levels m in
  let nets = Array.make (top + 1) [] in
  nets.(top) <- [ 0 ];
  let costs = ref [] in
  let total = ref 0 in
  for i = top - 1 downto 1 do
    let r = Float.pow 2.0 (float_of_int i) in
    (* per-level protocol label, so cost accounting attributes each
       election's traffic to its level of the 2^i-net hierarchy *)
    let label = Printf.sprintf "hierarchy.l%d" i in
    let election = Net_election.run ?via g ~r ~seeds:nets.(i + 1) ~label in
    nets.(i) <- election.Net_election.net;
    let messages =
      election.Net_election.discovery.Network.messages
      + election.Net_election.election.Network.messages
    in
    total := !total + messages;
    costs :=
      { level = i;
        members = List.length nets.(i);
        messages;
        makespan =
          Float.max election.Net_election.discovery.Network.makespan
            election.Net_election.election.Network.makespan }
      :: !costs
  done;
  (* Level 0 is all of V by definition (Section 2 normalizes the minimum
     distance to 1 = 2^0, so every node is a member); no election needed. *)
  nets.(0) <- List.init n Fun.id;
  { nets; costs = List.rev !costs; total_messages = !total }
