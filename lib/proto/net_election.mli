(** Distributed r-net election.

    Computes, by message passing alone, exactly the greedy r-net that the
    centralized [Cr_nets.Rnet.greedy] builds (scan ids ascending, join the
    net when no smaller-id member lies within distance < r):

    - phase 1 (discovery): every node floods its id within radius r (a
      budgeted Bellman-Ford flood), so each node learns the ids and
      distances of all nodes strictly within r;
    - phase 2 (election): a node joins the net once every smaller-id node
      within < r has announced a decision and none of them joined; decisions
      flood within the same radius. A larger-id neighbor cannot pre-empt a
      smaller one (it must wait for it), which is why the asynchronous
      outcome equals the sequential greedy scan.

    The per-phase message counts cost out the preprocessing of the paper's
    hierarchy of 2^i-nets in the asynchronous message-passing model. *)

type status =
  | In
  | Out

type result = {
  net : int list;  (** elected net members, ascending *)
  status : status array;
  nearest_in : (int * float) option array;
      (** per node, the nearest elected member heard of strictly within r
          (members map to themselves at distance 0) *)
  discovery : Network.stats;
  election : Network.stats;
}

(** [run g ~r] elects an r-net of the whole node set. [seeds] are
    pre-elected members (used to build the *nested* hierarchy: level i's
    election is seeded with level i+1's net, exactly like the centralized
    construction of Section 2); they block any non-seed within < r
    regardless of id. [via] selects the transport for both phases (default
    [Network.local ?jitter ()]); the flood-dedup guards keep both handlers
    idempotent under at-least-once delivery. [label] (default
    ["net_election"]) prefixes the per-phase protocol tags — cost
    accounting and protocol errors report [label ^ ".discovery"] /
    [label ^ ".election"], which is how [Dist_hierarchy] attributes cost
    to individual levels. Raises
    [Network.Protocol_error] (protocols ["net_election.discovery"] /
    ["net_election.election"]) if a phase exceeds [max_messages] (default:
    generous polynomial), or (protocol ["net_election"]) if some node ends
    the election undecided. *)
val run :
  ?max_messages:int -> ?jitter:int * float -> ?via:Network.runner ->
  ?seeds:int list -> ?label:string -> Cr_metric.Graph.t -> r:float -> result
