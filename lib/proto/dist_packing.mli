(** Distributed ball packing (the Packing Lemma 2.3 construction by message
    passing).

    Greedy order: ascending (r_u(j), id). Two candidate balls conflict iff
    their metric balls share a node; detection is by *witnesses*: every
    node inside two candidates' floods reports the conflict back to both
    centers along the reverse flood paths (an echo/convergecast — reverse
    pointers always decrease the recorded distance, so forwarding cannot
    loop). The election then follows the familiar wait-for-smaller rule:
    a candidate accepts once every strictly smaller conflicting candidate
    has announced a decision and none of them accepted; decisions flood the
    candidate's own ball and are relayed to conflict partners by the same
    witnesses.

    Three phases run to quiescence: radii (Dist_radii, shared across
    scales), candidate floods + conflict discovery, and the election.
    The outcome equals the centralized greedy over *metric* balls — the
    test suite checks that exactly, and that on tie-free metrics it also
    coincides with [Cr_packing.Ball_packing]'s canonical-ball packing. *)

type result = {
  accepted : int list;  (** packed ball centers, ascending *)
  radius : float array;  (** r_u(j) per node, from the shared radii phase *)
  discovery : Network.stats;
  election : Network.stats;
}

(** [run g ~distances ~j] packs scale [j] (balls of 2^j nodes), given the
    distance profiles from [Dist_radii.run]. [via] selects the transport
    for both phases (default [Network.local ?jitter ()]). Raises
    [Network.Protocol_error] (protocol ["dist_packing"]) if some candidate
    ends the election undecided. *)
val run :
  ?max_messages:int ->
  ?jitter:int * float ->
  ?via:Network.runner ->
  Cr_metric.Graph.t ->
  distances:float array array ->
  j:int ->
  result
