(** Measured wire encodings for protocol messages.

    The CONGEST cost model charges each message its size in bits; this
    module gives every [lib/proto] protocol a [measure : msg -> int]
    hook backed by [Cr_codec.Bitbuf] — the size is the length of an
    actual bit-packed encoding, not an [Obj]-based guess. Protocols
    write their message through the [push_*] helpers and {!measure}
    returns the resulting bit count.

    Conventions: node identifiers cost [ceil (log2 n)] bits; optional
    identifiers (a parent that may be [-1]) shift by one and draw from a
    universe of [n + 1]; distances travel as full IEEE doubles (64
    bits); variant tags cost [ceil (log2 cases)] bits. *)

(** [bits_for count] is the bits needed to distinguish [count] values
    ([>= 1]; [bits_for 1 = 1] — even a unary alphabet costs a bit on a
    real wire). *)
val bits_for : int -> int

(** [node_bits ~n] is the cost of one node id in an [n]-node graph. *)
val node_bits : n:int -> int

(** [measure f] runs [f] on a fresh bitbuf writer and returns the bits
    written — the canonical message-size hook. *)
val measure : (Cr_codec.Bitbuf.writer -> unit) -> int

(** [push_node w ~n v] appends node id [v] in [node_bits ~n] bits. *)
val push_node : Cr_codec.Bitbuf.writer -> n:int -> int -> unit

(** [push_opt_node w ~n v] appends [v] in [bits_for (n + 1)] bits,
    where [v] may be [-1] (encoded as 0, real ids shifted by one). *)
val push_opt_node : Cr_codec.Bitbuf.writer -> n:int -> int -> unit

(** [push_float w x] appends [x] as a 64-bit IEEE double. *)
val push_float : Cr_codec.Bitbuf.writer -> float -> unit

val push_bool : Cr_codec.Bitbuf.writer -> bool -> unit

(** [push_tag w ~cases v] appends variant tag [v] (in [0, cases)). *)
val push_tag : Cr_codec.Bitbuf.writer -> cases:int -> int -> unit

(** [push_seq w v] appends a transport sequence number as 32 bits
    (masked to the low 32 — sequence spaces wrap on a real wire). *)
val push_seq : Cr_codec.Bitbuf.writer -> int -> unit
