module Graph = Cr_metric.Graph
module Metric = Cr_metric.Metric

type announce = Announce of { origin : int; traveled : float }

let measure_announce g =
  let n = Graph.n g in
  fun (Announce { origin; traveled }) ->
    Wire.measure (fun w ->
        Wire.push_node w ~n origin;
        Wire.push_float w traveled)

type best = {
  mutable choice : (float * int) option;  (* (distance, id), lexicographic *)
  seen : (int, float) Hashtbl.t;  (* flood dedup *)
}

type result = {
  parent : int array;
  stats : Network.stats;
}

let parents_for_level ?max_messages ?jitter ?via ?(label = "dist_netting") m
    ~members ~upper ~radius =
  let g = Metric.graph m in
  let n = Metric.n m in
  let max_messages =
    match max_messages with
    | Some mm -> mm
    | None -> 1000 + (200 * n * n)
  in
  let runner =
    match via with Some r -> r | None -> Network.local ?jitter ()
  in
  let handler (actions : announce Network.actions) ~self state
      (Announce { origin; traveled }) =
    let stale =
      match Hashtbl.find_opt state.seen origin with
      | Some d -> traveled >= d
      | None -> false
    in
    if (not stale) && traveled <= radius then begin
      Hashtbl.replace state.seen origin traveled;
      let better =
        match state.choice with
        | None -> true
        | Some (d, id) -> traveled < d || (traveled = d && origin < id)
      in
      if better then state.choice <- Some (traveled, origin);
      Graph.iter_neighbors g self (fun v w ->
          if traveled +. w <= radius then
            actions.Network.send v
              (Announce { origin; traveled = traveled +. w }))
    end;
    state
  in
  let kickoff =
    List.map (fun u -> (u, Announce { origin = u; traveled = 0.0 })) upper
  in
  let states, stats =
    runner.Network.execute ~measure:(measure_announce g) g ~protocol:label
      ~init:(fun _ -> { choice = None; seen = Hashtbl.create 8 })
      ~handler ~kickoff ~max_messages
  in
  let parent = Array.make n (-1) in
  List.iter
    (fun x ->
      match states.(x).choice with
      | Some (_, id) -> parent.(x) <- id
      | None ->
        raise
          (Network.Protocol_error
             { protocol = label;
               node = Some x;
               stats;
               detail =
                 Printf.sprintf "covering bound violated (radius %g)" radius }))
    members;
  { parent; stats }

let all_parents ?via m =
  let hierarchy = Dist_hierarchy.build ?via m in
  let top = Array.length hierarchy.Dist_hierarchy.nets - 1 in
  let messages = ref 0 in
  let makespan = ref 0.0 in
  let parents =
    Array.init (top + 1) (fun i ->
        if i >= top then Array.make (Metric.n m) (-1)
        else begin
          let r = parents_for_level ?via m
              ~label:(Printf.sprintf "dist_netting.l%d" i)
              ~members:hierarchy.Dist_hierarchy.nets.(i)
              ~upper:hierarchy.Dist_hierarchy.nets.(i + 1)
              ~radius:(Float.pow 2.0 (float_of_int (i + 1)))
          in
          messages := !messages + r.stats.Network.messages;
          makespan := Float.max !makespan r.stats.Network.makespan;
          r.parent
        end)
  in
  (parents, { Network.messages = !messages; makespan = !makespan })
