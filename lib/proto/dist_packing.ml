module Graph = Cr_metric.Graph
module Tbl = Cr_metric.Tbl

type result = {
  accepted : int list;
  radius : float array;
  discovery : Network.stats;
  election : Network.stats;
}

(* (radius, id) lexicographic: the greedy scan order. *)
let precedes (r1, id1) (r2, id2) = r1 < r2 || (r1 = r2 && id1 < id2)

(* ---- phase A: candidate floods and witness conflict discovery ---- *)

type cand_info = {
  c_r : float;
  mutable c_dist : float;
  mutable c_via : int;  (* neighbor toward the candidate; -1 at the center *)
}

type a_state = {
  cands : (int, cand_info) Hashtbl.t;
  witnessed : (int * int, unit) Hashtbl.t;  (* conflict pairs reported here *)
  conflicts : (int, float) Hashtbl.t;  (* self as candidate: partner -> r *)
}

type a_msg =
  | Cand of { origin : int; r : float; traveled : float; from : int }
  | Note of { target : int; partner : int; partner_r : float }

let measure_a g =
  let n = Graph.n g in
  fun msg ->
    Wire.measure (fun w ->
        match msg with
        | Cand { origin; r; traveled; from } ->
          Wire.push_tag w ~cases:2 0;
          Wire.push_node w ~n origin;
          Wire.push_float w r;
          Wire.push_float w traveled;
          Wire.push_opt_node w ~n from
        | Note { target; partner; partner_r } ->
          Wire.push_tag w ~cases:2 1;
          Wire.push_node w ~n target;
          Wire.push_node w ~n partner;
          Wire.push_float w partner_r)

let discovery_phase g ~radius ~runner ~max_messages =
  let n = Graph.n g in
  let deliver_note (actions : a_msg Network.actions) ~self state ~target
      ~partner ~partner_r =
    if target = self then Hashtbl.replace state.conflicts partner partner_r
    else
      match Hashtbl.find_opt state.cands target with
      | Some info ->
        actions.Network.send info.c_via (Note { target; partner; partner_r })
      | None -> assert false (* witnesses lie inside the target's flood *)
  in
  let handler (actions : a_msg Network.actions) ~self state = function
    | Note { target; partner; partner_r } ->
      deliver_note actions ~self state ~target ~partner ~partner_r;
      state
    | Cand { origin; r; traveled; from } ->
      let improved =
        match Hashtbl.find_opt state.cands origin with
        | Some info ->
          if traveled < info.c_dist then begin
            info.c_dist <- traveled;
            info.c_via <- from;
            true
          end
          else false
        | None ->
          Hashtbl.replace state.cands origin
            { c_r = r; c_dist = traveled; c_via = from };
          true
      in
      if improved && traveled <= r then begin
        Graph.iter_neighbors g self (fun v w ->
            if traveled +. w <= r then
              actions.Network.send v
                (Cand { origin; r; traveled = traveled +. w; from = self }));
        (* witness rule: this node now sees [origin]; report every
           coexisting pair once, to both centers (ascending partner id, so
           note traffic is independent of hash order) *)
        Tbl.iter_sorted ~cmp:Int.compare
          (fun other (info : cand_info) ->
            if other <> origin && not (Hashtbl.mem state.witnessed (origin, other))
            then begin
              Hashtbl.replace state.witnessed (origin, other) ();
              Hashtbl.replace state.witnessed (other, origin) ();
              deliver_note actions ~self state ~target:origin ~partner:other
                ~partner_r:info.c_r;
              deliver_note actions ~self state ~target:other ~partner:origin
                ~partner_r:r
            end)
          state.cands
      end;
      state
  in
  let kickoff =
    List.init n (fun u ->
        (u, Cand { origin = u; r = radius.(u); traveled = 0.0; from = -1 }))
  in
  runner.Network.execute ~measure:(measure_a g) g
    ~protocol:"dist_packing.discovery"
    ~init:(fun _ ->
      { cands = Hashtbl.create 8;
        witnessed = Hashtbl.create 8;
        conflicts = Hashtbl.create 8 })
    ~handler ~kickoff ~max_messages

(* ---- phase B: wait-for-smaller election over the conflict graph ---- *)

type b_state = {
  mutable status : bool option;  (* Some true = ball accepted *)
  heard : (int, bool) Hashtbl.t;
  seen : (int, float) Hashtbl.t;  (* decision flood dedupe *)
  relayed : (int * int, unit) Hashtbl.t;
}

type b_msg =
  | Kick
  | Decision of { origin : int; r : float; verdict : bool; traveled : float;
                  from : int }
  | Relay of { target : int; partner : int; verdict : bool }

let measure_b g =
  let n = Graph.n g in
  fun msg ->
    Wire.measure (fun w ->
        match msg with
        | Kick -> Wire.push_tag w ~cases:3 0
        | Decision { origin; r; verdict; traveled; from } ->
          Wire.push_tag w ~cases:3 1;
          Wire.push_node w ~n origin;
          Wire.push_float w r;
          Wire.push_bool w verdict;
          Wire.push_float w traveled;
          Wire.push_node w ~n from
        | Relay { target; partner; verdict } ->
          Wire.push_tag w ~cases:3 2;
          Wire.push_node w ~n target;
          Wire.push_node w ~n partner;
          Wire.push_bool w verdict)

let election_phase g ~radius ~a_states ~runner ~max_messages =
  let n = Graph.n g in
  let flood_decision (actions : b_msg Network.actions) self verdict =
    let r = radius.(self) in
    Graph.iter_neighbors g self (fun v w ->
        if w <= r then
          actions.Network.send v
            (Decision { origin = self; r; verdict; traveled = w; from = self }))
  in
  let rec try_decide actions self state =
    if state.status = None then begin
      let mine = (radius.(self), self) in
      let rejected =
        Tbl.fold_sorted ~cmp:Int.compare
          (fun _ verdict acc -> acc || verdict)
          state.heard false
      in
      let decide verdict =
        state.status <- Some verdict;
        Hashtbl.replace state.seen self 0.0;  (* own flood echoes are stale *)
        flood_decision actions self verdict;
        (* The decider is itself a witness for every candidate whose ball
           covers it; a far partner whose flood radius dwarfs ours would
           otherwise never hear from us (the self-witness case). *)
        Tbl.iter_sorted ~cmp:Int.compare
          (fun other (_ : cand_info) ->
            if other <> self && not (Hashtbl.mem state.relayed (self, other))
            then begin
              Hashtbl.replace state.relayed (self, other) ();
              deliver_relay actions ~self state ~target:other ~partner:self
                ~verdict
            end)
          a_states.(self).cands
      in
      if rejected then decide false
      else begin
        let pending =
          Tbl.fold_sorted ~cmp:Int.compare
            (fun partner partner_r acc ->
              acc
              || (precedes (partner_r, partner) mine
                 && not (Hashtbl.mem state.heard partner)))
            a_states.(self).conflicts false
        in
        if not pending then decide true
      end
    end
  and deliver_relay (actions : b_msg Network.actions) ~self state ~target
      ~partner ~verdict =
    if target = self then begin
      if not (Hashtbl.mem state.heard partner) then
        Hashtbl.replace state.heard partner verdict;
      try_decide actions self state
    end
    else
      match Hashtbl.find_opt a_states.(self).cands target with
      | Some info ->
        actions.Network.send info.c_via (Relay { target; partner; verdict })
      | None -> assert false
  in
  let handler (actions : b_msg Network.actions) ~self state = function
    | Kick ->
      try_decide actions self state;
      state
    | Relay { target; partner; verdict } ->
      deliver_relay actions ~self state ~target ~partner ~verdict;
      state
    | Decision { origin; r; verdict; traveled; from = _ } ->
      let stale =
        match Hashtbl.find_opt state.seen origin with
        | Some d -> traveled >= d
        | None -> false
      in
      if (not stale) && traveled <= r then begin
        Hashtbl.replace state.seen origin traveled;
        Graph.iter_neighbors g self (fun v w ->
            if traveled +. w <= r then
              actions.Network.send v
                (Decision
                   { origin; r; verdict; traveled = traveled +. w;
                     from = self }));
        (* a node inside the decider's ball may itself be the conflict
           partner: record the verdict directly *)
        if Hashtbl.mem a_states.(self).conflicts origin then begin
          if not (Hashtbl.mem state.heard origin) then
            Hashtbl.replace state.heard origin verdict;
          try_decide actions self state
        end;
        (* witness relay to every conflict partner seen in phase A *)
        Tbl.iter_sorted ~cmp:Int.compare
          (fun other (_ : cand_info) ->
            if other <> origin && not (Hashtbl.mem state.relayed (origin, other))
            then begin
              Hashtbl.replace state.relayed (origin, other) ();
              deliver_relay actions ~self state ~target:other ~partner:origin
                ~verdict
            end)
          a_states.(self).cands
      end;
      state
  in
  let kickoff = List.init n (fun u -> (u, Kick)) in
  let states, stats =
    runner.Network.execute ~measure:(measure_b g) g
      ~protocol:"dist_packing.election"
      ~init:(fun _ ->
        { status = None; heard = Hashtbl.create 8; seen = Hashtbl.create 8;
          relayed = Hashtbl.create 8 })
      ~handler ~kickoff ~max_messages
  in
  let accepted = ref [] in
  for u = n - 1 downto 0 do
    match states.(u).status with
    | Some true -> accepted := u :: !accepted
    | Some false -> ()
    | None ->
      let pending =
        Tbl.fold_sorted ~cmp:Int.compare
          (fun partner partner_r acc ->
            if
              precedes (partner_r, partner) (radius.(u), u)
              && not (Hashtbl.mem states.(u).heard partner)
            then partner :: acc
            else acc)
          a_states.(u).conflicts []
      in
      raise
        (Network.Protocol_error
           { protocol = "dist_packing";
             node = Some u;
             stats;
             detail =
               Printf.sprintf "node undecided, waiting on [%s]"
                 (String.concat ";" (List.map string_of_int pending)) })
  done;
  (!accepted, stats)

let run ?max_messages ?jitter ?via g ~distances ~j =
  let n = Graph.n g in
  if j < 0 || 1 lsl j > n then
    invalid_arg "Dist_packing.run: 2^j must be at most n";
  let max_messages =
    match max_messages with
    | Some m -> m
    | None -> 1000 + (500 * n * n)
  in
  let runner =
    match via with Some r -> r | None -> Network.local ?jitter ()
  in
  let radius =
    Array.init n (fun u -> Dist_radii.radius_of_size distances u (1 lsl j))
  in
  let a_states, discovery = discovery_phase g ~radius ~runner ~max_messages in
  let accepted, election =
    election_phase g ~radius ~a_states ~runner ~max_messages
  in
  { accepted; radius; discovery; election }
