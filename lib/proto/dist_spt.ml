module Graph = Cr_metric.Graph

type node_state = {
  best : float;
  via : int;
}

(* Offer (d, from): "you can reach the root at cost d via me". *)
type msg = Offer of float * int

type result = {
  dist : float array;
  pred : int array;
  stats : Network.stats;
}

(* CONGEST message size: a distance plus an optional predecessor id. *)
let measure g =
  let n = Graph.n g in
  fun (Offer (d, from)) ->
    Wire.measure (fun w ->
        Wire.push_float w d;
        Wire.push_opt_node w ~n from)

let run ?max_messages ?jitter ?via g ~root =
  let n = Graph.n g in
  let max_messages =
    match max_messages with
    | Some m -> m
    | None -> 1000 + (100 * n * n)
  in
  let runner =
    match via with Some r -> r | None -> Network.local ?jitter ()
  in
  let init v =
    if v = root then { best = 0.0; via = -1 }
    else { best = infinity; via = -1 }
  in
  let announce (actions : msg Network.actions) self d =
    Graph.iter_neighbors g self (fun v w ->
        actions.Network.send v (Offer (d +. w, self)))
  in
  let handler actions ~self state = function
    | Offer (0.0, -1) when self = root ->
      (* kick-off: the root offers itself distance 0 (self-delivered); a
         duplicate delivery re-announces the same offers, which no
         neighbor can improve on — idempotent under at-least-once
         transports *)
      announce actions self 0.0;
      state
    | Offer (d, from) ->
      if d < state.best then begin
        announce actions self d;
        { best = d; via = from }
      end
      else if d = state.best && from >= 0 && from < state.via then
        (* confluent tie-break: among equal-cost predecessors keep the
           least id, so the final tree is a pure function of the metric —
           independent of delivery order, and hence identical under
           jitter, duplication, and retransmission. The announcement
           carries no predecessor, so no re-flood is needed. *)
        { state with via = from }
      else state
  in
  let states, stats =
    runner.Network.execute ~measure:(measure g) g ~protocol:"dist_spt" ~init
      ~handler
      ~kickoff:[ (root, Offer (0.0, -1)) ]
      ~max_messages
  in
  { dist = Array.map (fun s -> s.best) states;
    pred = Array.map (fun s -> s.via) states;
    stats }
