module Graph = Cr_metric.Graph

type msg = Hello of { origin : int; traveled : float }

type result = {
  distances : float array array;
  stats : Network.stats;
}

let measure g =
  let n = Graph.n g in
  fun (Hello { origin; traveled }) ->
    Wire.measure (fun w ->
        Wire.push_node w ~n origin;
        Wire.push_float w traveled)

let run ?max_messages ?jitter ?via g =
  let n = Graph.n g in
  let max_messages =
    match max_messages with
    | Some m -> m
    | None -> 1000 + (400 * n * n)
  in
  let runner =
    match via with Some r -> r | None -> Network.local ?jitter ()
  in
  (* all entries start at infinity — including the node's own, so that the
     kick-off self-message passes the relaxation guard and floods out *)
  let init _ = Array.make n infinity in
  let handler (actions : msg Network.actions) ~self dist
      (Hello { origin; traveled }) =
    if traveled < dist.(origin) then begin
      dist.(origin) <- traveled;
      Graph.iter_neighbors g self (fun v w ->
          actions.Network.send v (Hello { origin; traveled = traveled +. w }))
    end;
    dist
  in
  let kickoff =
    List.init n (fun v -> (v, Hello { origin = v; traveled = 0.0 }))
  in
  let states, stats =
    runner.Network.execute ~measure:(measure g) g ~protocol:"dist_radii" ~init
      ~handler ~kickoff ~max_messages
  in
  { distances = states; stats }

let radius_of_size distances u size =
  let row = Array.copy distances.(u) in
  Array.sort compare row;
  if size < 1 || size > Array.length row then
    invalid_arg "Dist_radii.radius_of_size: size out of range";
  row.(size - 1)
