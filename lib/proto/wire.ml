module Bitbuf = Cr_codec.Bitbuf

let bits_for count =
  if count < 1 then invalid_arg "Wire.bits_for: empty universe";
  let rec go b = if 1 lsl b >= count then b else go (b + 1) in
  go 1

let node_bits ~n = bits_for n

let measure f =
  let w = Bitbuf.writer () in
  f w;
  Bitbuf.length_bits w

let push_node w ~n v = Bitbuf.push w ~bits:(node_bits ~n) v
let push_opt_node w ~n v = Bitbuf.push w ~bits:(bits_for (n + 1)) (v + 1)

let push_float w x =
  let b = Int64.bits_of_float x in
  Bitbuf.push w ~bits:32 (Int64.to_int (Int64.shift_right_logical b 32));
  Bitbuf.push w ~bits:32 (Int64.to_int (Int64.logand b 0xFFFFFFFFL))

let push_bool w b = Bitbuf.push w ~bits:1 (if b then 1 else 0)
let push_tag w ~cases v = Bitbuf.push w ~bits:(bits_for cases) v
let push_seq w v = Bitbuf.push w ~bits:32 (v land 0xFFFFFFFF)
