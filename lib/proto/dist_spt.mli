(** Distributed shortest-path-tree construction (asynchronous
    Bellman-Ford).

    The root announces distance 0; every node keeps its best-known distance
    and predecessor and re-announces on improvement. With positive weights
    the protocol quiesces with exact shortest-path distances — this is the
    distributed counterpart of the centralized Dijkstra pass the schemes'
    preprocessing uses to build Voronoi trees and next-hop tables, and the
    message counts reported here cost out that preprocessing in the
    asynchronous message-passing model.

    The improvement guard makes the handler idempotent, so the protocol
    converges to the same tree under any at-least-once transport — in
    particular under [Cr_fault.Reliable.runner] passed as [via]. *)

type result = {
  dist : float array;
  pred : int array;  (** -1 at the root *)
  stats : Network.stats;
}

(** [run g ~root] executes the protocol to quiescence. [via] selects the
    transport (default [Network.local ?jitter ()]); [jitter] is ignored
    when [via] is given. Raises [Network.Protocol_error] (protocol
    ["dist_spt"]) past [max_messages] (default: a generous polynomial). *)
val run :
  ?max_messages:int ->
  ?jitter:int * float ->
  ?via:Network.runner ->
  Cr_metric.Graph.t ->
  root:int ->
  result
