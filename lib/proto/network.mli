(** An event-driven message-passing network simulator.

    Nodes hold protocol state and react to messages; a message sent across
    an edge is delivered after a delay equal to the edge weight (the
    standard asynchronous CONGEST-style cost model in which the paper's
    preprocessing would run). Delivery order is deterministic: by delivery
    time, ties by send order.

    The simulator is parametric in the protocol's message and state types;
    concrete protocols (distributed shortest-path trees, distributed r-net
    election) live in sibling modules. *)

type ('msg, 'state) t

(** What a handler may do: read the clock and send to direct neighbors. *)
type 'msg actions = {
  now : float;
  send : int -> 'msg -> unit;
      (** [send neighbor msg]; raises [Invalid_argument] if the target is
          not adjacent to the handling node. *)
}

type stats = {
  messages : int;  (** total messages delivered *)
  makespan : float;  (** delivery time of the last message *)
}

(** [create g ~init] builds a quiescent network with per-node states.
    [jitter = (seed, magnitude)] perturbs every delivery delay by a
    deterministic pseudo-random factor in [1, 1 + magnitude): the
    asynchronous model guarantees only eventual delivery, so protocol
    *outcomes* must not depend on timing — the test suite runs the
    constructions under several jitter schedules and asserts identical
    results. [obs] (default: the global trace context) receives one
    [Message] event per delivery and, at quiescence, [network.messages]
    and [network.makespan] counters. *)
val create :
  ?obs:Cr_obs.Trace.context -> ?jitter:int * float -> Cr_metric.Graph.t ->
  init:(int -> 'state) -> ('msg, 'state) t

(** [state t v] reads a node's current state. *)
val state : ('msg, 'state) t -> int -> 'state

(** [deliveries t] is a copy of the per-node delivered-message counts
    accumulated so far — the load-balance view of a protocol run. *)
val deliveries : ('msg, 'state) t -> int array

(** [round_histogram t] buckets deliveries by protocol round, where round
    r collects the deliveries with time in [r, r+1) — for unit edge
    weights this is exactly the synchronous round structure. Sorted by
    round. *)
val round_histogram : ('msg, 'state) t -> (int * int) list

(** [inject t ~dst msg] enqueues an external message (delivered at the
    current simulation time; used to kick off protocols). *)
val inject : ('msg, 'state) t -> dst:int -> 'msg -> unit

(** [run t ~handler ~max_messages] delivers messages until quiescence:
    [handler actions ~self state msg] returns the node's next state.
    Raises [Failure] if more than [max_messages] are delivered (protocol
    bug guard). Returns delivery statistics. [run] may be called again
    after further [inject]s; statistics accumulate. *)
val run :
  ('msg, 'state) t ->
  handler:('msg actions -> self:int -> 'state -> 'msg -> 'state) ->
  max_messages:int ->
  stats
