(** An event-driven message-passing network simulator.

    Nodes hold protocol state and react to messages; a message sent across
    an edge is delivered after a delay equal to the edge weight (the
    standard asynchronous CONGEST-style cost model in which the paper's
    preprocessing would run). Delivery order is deterministic: by delivery
    time, ties by send order — one global sequence counter stamps every
    enqueue (sends, fault-injected duplicate copies, timers, and external
    [inject]s alike), so the tie-break stays total even when injects
    interleave with in-flight deliveries.

    The simulator is parametric in the protocol's message and state types;
    concrete protocols (distributed shortest-path trees, distributed r-net
    election) live in sibling modules. An optional {!fault_hooks} layer
    (driven by [Cr_fault.Plan]) interposes on every send and delivery:
    drops, duplicate copies, delay inflation, and node crash windows. *)

type ('msg, 'state) t

(** What a handler may do: read the clock, send to direct neighbors, and
    arm local timers. *)
type 'msg actions = {
  now : float;
  send : int -> 'msg -> unit;
      (** [send neighbor msg]; raises [Invalid_argument] if the target is
          not adjacent to the handling node. Subject to the fault layer. *)
  timer : delay:float -> 'msg -> unit;
      (** [timer ~delay msg] delivers [msg] back to the handling node
          [delay] time units from now. Timers are local (never cross an
          edge) so the fault layer cannot drop them; if the node is down
          when one fires it is deferred to the recovery instant. *)
}

type stats = {
  messages : int;  (** total edge/external messages delivered *)
  makespan : float;  (** delivery time of the last event *)
}

(** A typed, diagnosable protocol failure: which protocol gave up, at which
    node, with the network statistics at that point. Replaces the bare
    [Failure] exits of the protocol modules so callers can distinguish a
    budget bug from a non-quiescent election from a covering-bound
    violation. *)
type protocol_error = {
  protocol : string;  (** e.g. ["dist_spt"], ["net_election.election"] *)
  node : int option;  (** the node at which the failure was detected *)
  stats : stats;  (** deliveries and makespan at the moment of failure *)
  detail : string;
}

exception Protocol_error of protocol_error

(** [error_message e] is a one-line human rendering (also installed as the
    [Printexc] printer for {!Protocol_error}). *)
val error_message : protocol_error -> string

(** Fault interposition, consulted by the simulator on every send and
    delivery. Implementations live in [Cr_fault.Plan]; the hooks may be
    stateful (per-edge message counters) but must be deterministic. *)
type fault_hooks = {
  copies : src:int -> dst:int -> delay:float -> float list;
      (** delivery delays for each copy of a sent message: [[]] drops it,
          [[delay]] passes it through, [[delay; d']] duplicates it, and any
          delay greater than the nominal one inflates that copy's latency.
          Delays must not shrink below the nominal edge delay. *)
  down_until : node:int -> time:float -> float option;
      (** [Some recovery] when the node is crashed at [time]; deliveries
          to it are lost (timers are deferred to [recovery] instead). *)
}

(** Per-network fault accounting, all zero when no hooks are installed. *)
type fault_counts = {
  sent_dropped : int;  (** sends the plan dropped outright *)
  sent_duplicated : int;  (** extra copies the plan enqueued *)
  sent_delayed : int;  (** sends with at least one inflated copy *)
  crash_lost : int;  (** deliveries lost because the target was down *)
  timers_deferred : int;
      (** timer fires and boot injections deferred past a crash window *)
}

(** [create g ~init] builds a quiescent network with per-node states.
    [jitter = (seed, magnitude)] perturbs every delivery delay by a
    deterministic pseudo-random factor in [1, 1 + magnitude): the
    asynchronous model guarantees only eventual delivery, so protocol
    *outcomes* must not depend on timing — the test suite runs the
    constructions under several jitter schedules and asserts identical
    results. [faults] interposes a fault plan on every send and delivery.
    [obs] (default: the global trace context) receives one [Message] event
    per delivery and, at quiescence, [network.messages] /
    [network.makespan] counters (plus [network.faults.*] when hooks are
    installed).

    [cost] (default {!Cr_obs.Cost.null}) accumulates CONGEST cost: every
    delivered edge/external message is charged to its protocol phase and
    round, edge messages also to their undirected edge, with a size of
    [measure msg] bits ([0] when no [measure] hook is given). The hot
    path pays a single boolean test when [cost] is disabled. *)
val create :
  ?obs:Cr_obs.Trace.context ->
  ?jitter:int * float ->
  ?faults:fault_hooks ->
  ?cost:Cr_obs.Cost.t ->
  ?measure:('msg -> int) ->
  Cr_metric.Graph.t ->
  init:(int -> 'state) ->
  ('msg, 'state) t

(** [state t v] reads a node's current state. *)
val state : ('msg, 'state) t -> int -> 'state

(** [deliveries t] is a copy of the per-node delivered-message counts
    accumulated so far — the load-balance view of a protocol run. *)
val deliveries : ('msg, 'state) t -> int array

(** [fault_counts t] is the fault-layer accounting so far. *)
val fault_counts : ('msg, 'state) t -> fault_counts

(** [timer_events t] is the number of timer fires so far (not counted in
    [stats.messages]). *)
val timer_events : ('msg, 'state) t -> int

(** [round_histogram t] buckets deliveries by protocol round, where round
    r collects the deliveries with time in [r, r+1) — for unit edge
    weights this is exactly the synchronous round structure. Sorted by
    round. *)
val round_histogram : ('msg, 'state) t -> (int * int) list

(** [inject t ~dst msg] enqueues an external message (delivered at the
    current simulation time; used to kick off protocols). Injected
    messages bypass the fault layer's send hook and are deferred — not
    lost — when the target is inside a crash window (they model local
    boot events, not edge traffic), but they share the global sequence
    counter, so an inject racing an in-flight delivery at the same
    instant still resolves by send order. *)
val inject : ('msg, 'state) t -> dst:int -> 'msg -> unit

(** [run t ~handler ~max_messages] delivers messages until quiescence:
    [handler actions ~self state msg] returns the node's next state.
    Raises {!Protocol_error} (tagged with [protocol], default
    ["network"]) if more than [max_messages] deliveries plus timer fires
    occur — the budget boundary is exact: a protocol delivering exactly
    [max_messages] events completes. Returns delivery statistics. [run]
    may be called again after further [inject]s; statistics accumulate. *)
val run :
  ?protocol:string ->
  ('msg, 'state) t ->
  handler:('msg actions -> self:int -> 'state -> 'msg -> 'state) ->
  max_messages:int ->
  stats

(** How a protocol's messages actually travel. Concrete protocols
    (Dist_spt, Net_election, ...) describe themselves as
    (init, handler, kickoff) and execute through a runner: {!local} is the
    plain simulator; [Cr_fault.Reliable.runner] is the hardened
    ack/retransmit transport over a fault plan. [execute] returns the
    final per-node states and the run statistics. *)
type runner = {
  execute :
    'msg 'state.
    ?measure:('msg -> int) ->
    Cr_metric.Graph.t ->
    protocol:string ->
    init:(int -> 'state) ->
    handler:('msg actions -> self:int -> 'state -> 'msg -> 'state) ->
    kickoff:(int * 'msg) list ->
    max_messages:int ->
    'state array * stats;
}

(** [local ()] is the default fault-free runner (optionally jittered).
    [cost] threads a {!Cr_obs.Cost} accumulator into every execution;
    the protocols pass their [Wire]-measured [measure] hooks through
    [execute], so a costed runner sees real message bits. *)
val local :
  ?obs:Cr_obs.Trace.context ->
  ?jitter:int * float ->
  ?cost:Cr_obs.Cost.t ->
  unit ->
  runner
