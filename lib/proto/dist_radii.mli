(** Distributed computation of the ball radii r_u(j).

    Every node floods its id with exact accumulated distance (an
    all-sources asynchronous Bellman-Ford); at quiescence each node knows
    its distance to every other node and reads off r_u(j) — the radius of
    its smallest ball holding 2^j nodes — locally. This is the flooding
    realization of the "each node knows its distance profile" assumption
    the Packing Lemma's construction starts from; the message count is the
    honest price of that knowledge (Theta(n m) deliveries, the same work as
    n shortest-path trees). *)

type result = {
  distances : float array array;  (** distances.(u).(x) = d(u, x) *)
  stats : Network.stats;
}

(** [run g] floods to quiescence. [via] selects the transport (default
    [Network.local ?jitter ()]); the relaxation guard keeps the handler
    idempotent, so any at-least-once transport yields the same profiles. *)
val run :
  ?max_messages:int ->
  ?jitter:int * float ->
  ?via:Network.runner ->
  Cr_metric.Graph.t ->
  result

(** [radius_of_size distances u size] is r_u for a ball of [size] nodes,
    computed from a node's local distance profile. *)
val radius_of_size : float array array -> int -> int -> float
