(** The nested hierarchy of 2^i-nets Y_i (Section 2, Eqn 1).

    Levels run from 0 to L = ceil(log2 Delta):
    - Y_L is a singleton (the least node id, standing in for the paper's
      "arbitrary node");
    - Y_i is obtained by greedily extending Y_(i+1) to a 2^i-net of V;
    - Y_0 = V (level-0 membership is forced rather than recomputed so that
      float rounding can never drop a node).

    So Y_L \subseteq Y_(L-1) \subseteq ... \subseteq Y_0 = V. *)

type t

(** [build ?obs m] constructs the hierarchy for metric [m], under an
    [hierarchy.build] span with level/net-point counters when [obs] (or
    the global trace context) is enabled. *)
val build : ?obs:Cr_obs.Trace.context -> Cr_metric.Metric.t -> t

(** [metric h] is the underlying metric. *)
val metric : t -> Cr_metric.Metric.t

(** [top_level h] is L = ceil(log2 Delta); valid levels are 0..L. *)
val top_level : t -> int

(** [net h i] is Y_i sorted by id. Raises [Invalid_argument] if [i] is out
    of range. *)
val net : t -> int -> int list

(** [mem h ~level v] is true iff v is in Y_level. *)
val mem : t -> level:int -> int -> bool

(** [net_radius i] is 2^i, the packing radius of level [i]. *)
val net_radius : int -> float

(** [highest_level_of h v] is the largest [i] with [v] in Y_i. *)
val highest_level_of : t -> int -> int

(** [nearest_net_point h ~level v] is the node of Y_level nearest to [v],
    ties broken toward the least id — the paper's common tie-breaking
    mechanism for zooming sequences. *)
val nearest_net_point : t -> level:int -> int -> int
