module Metric = Cr_metric.Metric

type t = {
  metric : Metric.t;
  top_level : int;
  nets : int list array;  (* nets.(i) = Y_i, sorted *)
  member : bool array array;  (* member.(i).(v) *)
  nearest : int array array;  (* nearest.(i).(v) = nearest net point in Y_i *)
}

let net_radius i = Float.pow 2.0 (float_of_int i)

let all_nodes n = List.init n Fun.id

let build ?obs m =
  let ctx = Cr_obs.Trace.resolve obs in
  Cr_obs.Trace.span ctx "hierarchy.build" (fun () ->
      let n = Metric.n m in
      let top_level = Metric.levels m in
      let nets = Array.make (top_level + 1) [] in
      nets.(top_level) <- [ 0 ];
      for i = top_level - 1 downto 1 do
        nets.(i) <-
          Rnet.greedy m ~r:(net_radius i) ~candidates:(all_nodes n)
            ~seed:nets.(i + 1)
      done;
      nets.(0) <- all_nodes n;
      let member =
        Array.map
          (fun net ->
            let flags = Array.make n false in
            List.iter (fun v -> flags.(v) <- true) net;
            flags)
          nets
      in
      let nearest =
        Array.map
          (fun net -> Array.init n (fun v -> Metric.nearest_in m v net))
          nets
      in
      if Cr_obs.Trace.enabled ctx then begin
        Cr_obs.Trace.counter ctx "hierarchy.levels"
          (float_of_int (top_level + 1));
        Cr_obs.Trace.counter ctx "hierarchy.net_points"
          (float_of_int
             (Array.fold_left (fun acc l -> acc + List.length l) 0 nets))
      end;
      { metric = m; top_level; nets; member; nearest })

let metric h = h.metric
let top_level h = h.top_level

let check_level h i =
  if i < 0 || i > h.top_level then invalid_arg "Hierarchy: level out of range"

let net h i =
  check_level h i;
  h.nets.(i)

let mem h ~level v =
  check_level h level;
  h.member.(level).(v)

let highest_level_of h v =
  let rec go i = if h.member.(i).(v) then i else go (i - 1) in
  go h.top_level

let nearest_net_point h ~level v =
  check_level h level;
  h.nearest.(level).(v)
