(** The netting tree T({Y_i}) and its DFS leaf enumeration (Sections 2, 4.1).

    Tree vertices are pairs (x, i) with x in Y_i; the parent of (x, i) is
    (x', i+1) where x' is the node of Y_(i+1) nearest to x — exactly the
    next step of x's zooming sequence, so every node's zooming sequence is
    the leaf-to-root path from (u, 0).

    The label function l : V -> [n) enumerates the leaves in DFS order
    (children visited in increasing id order). Range(x, i) is the contiguous
    interval of leaf labels in the subtree of (x, i); the key property
    (Section 4.1) is: l(u) in Range(x, i) iff x = u(i). *)

type t

type range = { lo : int; hi : int }

(** [build ?obs h] assembles the tree, labels, and ranges for hierarchy
    [h] (traced as a [netting_tree.build] span). *)
val build : ?obs:Cr_obs.Trace.context -> Hierarchy.t -> t

(** [hierarchy t] is the underlying net hierarchy. *)
val hierarchy : t -> Hierarchy.t

(** [label t v] is l(v), the DFS index of leaf (v, 0). *)
val label : t -> int -> int

(** [node_of_label t l] inverts [label]. *)
val node_of_label : t -> int -> int

(** [range t ~level x] is Range(x, level). Raises [Invalid_argument] if
    [x] is not in Y_level. *)
val range : t -> level:int -> int -> range

(** [in_range r l] is true iff [r.lo <= l <= r.hi]. *)
val in_range : range -> int -> bool

(** [parent t ~level x] is the parent net point of (x, level) at
    [level + 1]. Raises [Invalid_argument] at the top level. *)
val parent : t -> level:int -> int -> int

(** [children t ~level x] is the list of child net points of (x, level) at
    [level - 1], increasing ids. *)
val children : t -> level:int -> int -> int list
