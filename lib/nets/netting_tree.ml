type range = { lo : int; hi : int }

type t = {
  hierarchy : Hierarchy.t;
  labels : int array;  (* labels.(v) = l(v) *)
  label_owner : int array;  (* inverse of labels *)
  ranges : range array array;  (* ranges.(i).(x); {lo=-1; hi=-1} if absent *)
  parents : int array array;  (* parents.(i).(x) for i < top; -1 if absent *)
  kids : int list array array;  (* kids.(i).(x) = children at level i-1 *)
}

let absent = { lo = -1; hi = -1 }

let build ?obs h =
  Cr_obs.Trace.span (Cr_obs.Trace.resolve obs) "netting_tree.build"
  @@ fun () ->
  let m = Hierarchy.metric h in
  let n = Cr_metric.Metric.n m in
  let top = Hierarchy.top_level h in
  let parents = Array.init (top + 1) (fun _ -> Array.make n (-1)) in
  let kids = Array.init (top + 1) (fun _ -> Array.make n []) in
  for i = 0 to top - 1 do
    List.iter
      (fun x ->
        let p = Hierarchy.nearest_net_point h ~level:(i + 1) x in
        parents.(i).(x) <- p;
        kids.(i + 1).(p) <- x :: kids.(i + 1).(p))
      (Hierarchy.net h i)
  done;
  (* Children were accumulated in reverse id order; restore increasing. *)
  Array.iter (fun per_node -> Array.iteri (fun x l -> per_node.(x) <- List.rev l) per_node) kids;
  let labels = Array.make n (-1) in
  let label_owner = Array.make n (-1) in
  let ranges = Array.init (top + 1) (fun _ -> Array.make n absent) in
  let next_label = ref 0 in
  (* DFS assigning leaf labels and subtree ranges; depth is at most top+1 so
     recursion is safe. *)
  let rec visit level x =
    if level = 0 then begin
      let l = !next_label in
      incr next_label;
      labels.(x) <- l;
      label_owner.(l) <- x;
      ranges.(0).(x) <- { lo = l; hi = l }
    end
    else begin
      let lo = !next_label in
      List.iter (fun y -> visit (level - 1) y) kids.(level).(x);
      ranges.(level).(x) <- { lo; hi = !next_label - 1 }
    end
  in
  (match Hierarchy.net h top with
  | [ root ] -> visit top root
  | _ -> invalid_arg "Netting_tree.build: top net is not a singleton");
  assert (!next_label = n);
  { hierarchy = h; labels; label_owner; ranges; parents; kids }

let hierarchy t = t.hierarchy
let label t v = t.labels.(v)
let node_of_label t l = t.label_owner.(l)

let range t ~level x =
  let r = t.ranges.(level).(x) in
  if r.lo < 0 then invalid_arg "Netting_tree.range: not a net point";
  r

let in_range r l = r.lo <= l && l <= r.hi

let parent t ~level x =
  if level >= Hierarchy.top_level t.hierarchy then
    invalid_arg "Netting_tree.parent: top level has no parent";
  let p = t.parents.(level).(x) in
  if p < 0 then invalid_arg "Netting_tree.parent: not a net point";
  p

let children t ~level x =
  if level = 0 then []
  else t.kids.(level).(x)
