(** Streaming traffic telemetry: sliding windows over routed traffic,
    per-window quantile sketches, and heavy-hitter top-k (ROADMAP item 4).

    {!Cost} answers "what did the whole run cost"; [Live] answers "what is
    hot {e right now} and how did it evolve as load ramped". A {!t} is an
    accumulator threaded through [Cr_sim.Walker], [Cr_sim.Stats] and
    [Cr_serve.Engine]: each routed message advances a {e logical clock}
    ({!tick} — routed-message count, never wall time, so output stays
    deterministic), route outcomes land in the current window
    ({!record}), and every traversed edge lands in both the window's and
    the run's utilization tables ({!record_edge}).

    Like {!Cost}, the accumulator follows the null-context pattern:
    {!null} is permanently disabled, {!record}/{!record_edge}/{!tick} on
    it are no-ops whose disabled path is proven allocation-free by the
    typed lint tier, and call sites guard with
    [if Live.enabled live then ...] (enforced by the trace-guard rule).

    Determinism contract: all sketches are deterministic functions of the
    recorded stream, every accessor sorts its output, and recording
    happens on the calling domain only (the structure is {b not}
    thread-safe) — so feeding it in pair order, as [Stats] and [Engine]
    do, makes snapshots byte-identical across [CR_DOMAINS] settings. *)

(** Deterministic fixed-size mergeable quantile sketch.

    A fixed array of log-spaced bucket counters (DDSketch-style): values
    below {!val:Qsketch.v_min} share an underflow bucket, values past the
    top share an overflow bucket, and everything between lands in one of
    the geometrically-spaced buckets. {!Qsketch.merge} adds counter
    arrays element-wise, so merging is exactly commutative and
    associative on counts — quantiles are invariant under any merge
    order or grouping (the pool-size-invariance property).

    Rank guarantee: {!Qsketch.quantile} returns the bucket representative
    of the {e exact} nearest-rank sample (rank error zero); the only
    error is value discretization, bounded by
    [rank_error_bound * true_value] relative for in-range values and by
    [v_min] absolute below the range (tracked exact min/max serve the
    extremes). *)
module Qsketch : sig
  type t

  (** Number of buckets (underflow + log-spaced + overflow). *)
  val buckets : int

  (** Lower edge of the log-spaced range; smaller observations share the
      underflow bucket at absolute error <= [v_min]. *)
  val v_min : float

  (** Relative value-error bound for in-range observations:
      [sqrt gamma - 1] for bucket ratio [gamma]. *)
  val rank_error_bound : float

  val create : unit -> t

  (** [add t x] absorbs one observation. Negative and NaN observations
      clamp into the underflow bucket. *)
  val add : t -> float -> unit

  val count : t -> int

  (** Exact sum/min/max of the absorbed observations (0, [infinity],
      [neg_infinity] while empty). [sum] is exact but, unlike the
      counters, float addition is not associative — quantiles and counts
      are the merge-order-invariant part of the sketch. *)
  val sum : t -> float

  val min_value : t -> float
  val max_value : t -> float

  (** [quantile t p] estimates the nearest-rank [p]-quantile
      (rank [ceil (p * count)], matching [Cr_sim.Stats]); 0.0 while
      empty. The estimate is clamped into [[min_value, max_value]]. *)
  val quantile : t -> float -> float

  (** Element-wise counter addition plus exact min/max/sum combination;
      the inputs are unchanged. *)
  val merge : t -> t -> t
end

(** Space-Saving heavy-hitter sketch over integer keys.

    At most [capacity] keys are tracked. Each reported entry carries its
    estimated count and an error bound with the classic guarantee
    [count - err <= true_count <= count], where [err <= total / capacity];
    any key whose true count exceeds [total / capacity] is tracked.
    Eviction and ordering tie-breaks are deterministic (smallest count,
    then smallest key), so the sketch is a pure function of the input
    stream. {!Topk.merge} is commutative; like all Misra-Gries-family
    merges it widens error bounds and is only associative up to
    truncation, so byte-identity across pool sizes comes from recording
    in pair order, not from merge reassociation. *)
module Topk : sig
  type t

  type entry = {
    key : int;
    count : int;  (** estimated occurrences; never an underestimate *)
    err : int;  (** max overestimate: [count - err <= true <= count] *)
  }

  (** Raises [Invalid_argument] on non-positive capacity. *)
  val create : capacity:int -> t

  val capacity : t -> int

  (** Total weight absorbed (the error-bound denominator). *)
  val total : t -> int

  (** [add t ?weight key] absorbs [weight] (default 1, must be positive)
      occurrences of [key]. *)
  val add : ?weight:int -> t -> int -> unit

  (** [top t ~k] is the [k] heaviest tracked entries: count descending,
      then err ascending, then key ascending. *)
  val top : t -> k:int -> entry list

  (** Union merge into a fresh sketch of the larger capacity, keeping
      the heaviest keys; keys absent from one side absorb that side's
      maximum-possible missed count into [err]. *)
  val merge : t -> t -> t
end

type status = Delivered | Rerouted | Undeliverable

type t

(** Aggregate utilization of one undirected edge [(u, v)] with [u < v]. *)
type edge_load = {
  u : int;
  v : int;
  messages : int;
}

(** A heavy-hitter table entry ({!Topk.entry} with decoded key). *)
type hot = {
  hot_key : int;  (** node id *)
  hot_count : int;
  hot_err : int;
}

type hot_edge = {
  he_u : int;
  he_v : int;
  he_count : int;
  he_err : int;
}

(** One retained window's statistics. Quantiles follow [Cr_sim.Stats]'s
    nearest-rank convention; [latency] is route cost, the latency proxy
    of a metric-space simulation. *)
type window_stats = {
  ws_index : int;  (** window number since creation, 0-based *)
  ws_routes : int;
  ws_delivered : int;
  ws_rerouted : int;
  ws_undeliverable : int;
  ws_delivery_rate : float;  (** (delivered + rerouted) / routes; 1.0 while empty *)
  ws_stretch_p50 : float;
  ws_stretch_p95 : float;
  ws_stretch_p99 : float;
  ws_stretch_max : float;
  ws_hops_p50 : float;
  ws_hops_p99 : float;
  ws_latency_p50 : float;
  ws_latency_p99 : float;
  ws_edge_messages : int;  (** edge traversals in this window *)
  ws_util_max : int;  (** max messages on any single edge this window *)
  ws_edges_touched : int;
  ws_top_edges : hot_edge list;  (** k heaviest, Space-Saving estimates *)
  ws_top_dsts : hot list;
  ws_top_srcs : hot list;
}

(** Whole-run aggregates (including windows already rotated out). *)
type totals = {
  t_routes : int;
  t_delivered : int;
  t_rerouted : int;
  t_undeliverable : int;
  t_delivery_rate : float;
  t_stretch_p50 : float;
  t_stretch_p95 : float;
  t_stretch_p99 : float;
  t_stretch_max : float;
  t_edge_messages : int;  (** conservation invariant: equals the {!Cost}
                              ledger's edge-message total when a walker
                              carries both accumulators *)
  t_util_max : int;  (** max per-edge messages within any one window *)
}

(** The disabled accumulator: {!enabled} is [false], recording is a
    no-op, every accessor reports emptiness. *)
val null : t

(** [create ?window ?depth ?k ?capacity ()] is an enabled accumulator:
    a ring of [depth] windows (default 8) of [window] ticks each
    (default 256), reporting [k] heavy hitters (default 5) from
    Space-Saving sketches of [capacity] counters (default 64). Raises
    [Invalid_argument] on non-positive sizes or [capacity < k]. *)
val create : ?window:int -> ?depth:int -> ?k:int -> ?capacity:int -> unit -> t

val enabled : t -> bool

(** Ticks per window / ring depth / reported heavy hitters. *)
val window_size : t -> int

val depth : t -> int
val top_k : t -> int

(** [tick t] advances the logical clock by one routed message, rotating
    to a fresh window every [window] ticks (the oldest retained window is
    evicted once [depth] windows are live). Call once per routed message,
    before recording its outcome. No-op when disabled. *)
val tick : t -> unit

(** Total ticks so far. *)
val clock : t -> int

(** Windows rotated out of the ring so far. *)
val evicted : t -> int

(** [record t ~src ~dst ~status ~dist ~cost ~hops] lands one route
    outcome in the current window: outcome counters, the destination /
    source heavy-hitter sketches, and — when the route arrived and
    [dist > 0] — the stretch ([cost/dist]), hop and latency quantile
    sketches. No-op when disabled. *)
val record :
  t ->
  src:int -> dst:int -> status:status -> dist:float -> cost:float ->
  hops:int -> unit

(** [record_edge t ~src ~dst] charges one message to the undirected edge
    [(src, dst)] in the current window's and the run's utilization
    tables and the window's edge heavy-hitter sketch. Endpoints must be
    distinct ids in [[0, 2^20)]; anything else is ignored (out-of-band
    moves carry no edge). No-op when disabled. *)
val record_edge : t -> src:int -> dst:int -> unit

(** Retained windows, oldest first. *)
val windows : t -> window_stats list

val totals : t -> totals

(** Whole-run per-edge traversal counts (exact, not sketched), sorted by
    [(u, v)]. *)
val edge_totals : t -> edge_load list

(** [hot_edges t] is the run's [k] most-traversed edges (exact counts):
    messages descending, then [(u, v)] ascending. *)
val hot_edges : t -> edge_load list

(** Run-level heavy-hitter destinations / sources (Space-Saving
    estimates, {!Topk.top} order). *)
val hot_dsts : t -> hot list

val hot_srcs : t -> hot list

(** Deterministic human-readable rendering: a per-window table plus run
    totals and heavy-hitter lists — the canonical byte-comparable
    snapshot used by tests ([CR_DOMAINS=1/4] byte-identity) and
    [crdemo live]. *)
val render : t -> string

(** [emit ctx t] publishes run totals as {!Trace} counters
    ([live.routes], [live.delivery_rate], [live.util.max], ...); no-op
    when [ctx] is disabled. *)
val emit : Trace.context -> t -> unit
