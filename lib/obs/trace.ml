type phase =
  | Unphased
  | Zoom of int
  | Ball_search of int
  | Net_phase
  | Voronoi_phase
  | Search_tree_phase
  | Teleport
  | Deliver
  | Fallback
  | Faults

let phase_label = function
  | Unphased -> "unphased"
  | Zoom _ -> "zoom"
  | Ball_search _ -> "ball-search"
  | Net_phase -> "net"
  | Voronoi_phase -> "voronoi"
  | Search_tree_phase -> "search-tree"
  | Teleport -> "teleport"
  | Deliver -> "deliver"
  | Fallback -> "fallback"
  | Faults -> "faults"

let phase_level = function
  | Zoom i | Ball_search i -> Some i
  | Unphased | Net_phase | Voronoi_phase | Search_tree_phase | Teleport
  | Deliver | Fallback | Faults ->
    None

let pp_phase ppf p =
  match phase_level p with
  | Some i -> Format.fprintf ppf "%s[%d]" (phase_label p) i
  | None -> Format.pp_print_string ppf (phase_label p)

type hop_kind = Edge | Jump | Virtual

let hop_kind_label = function
  | Edge -> "edge"
  | Jump -> "teleport"
  | Virtual -> "virtual"

type body =
  | Span_open of { name : string }
  | Span_close of { name : string }
  | Counter of { name : string; value : float }
  | Mark of { name : string }
  | Hop of {
      kind : hop_kind;
      src : int;
      dst : int;
      cost : float;
      total : float;
      phase : phase;
    }
  | Message of { node : int; round : int; time : float }

type event = { ts : float; body : body }

type sink = {
  emit : event -> unit;
  flush : unit -> unit;
}

type context = {
  enabled : bool;
  clock : unit -> float;
  sink : sink;
}

let null_sink = { emit = ignore; flush = ignore }

let null = { enabled = false; clock = (fun () -> 0.0); sink = null_sink }

let wall_clock = Unix.gettimeofday

let counting_clock () =
  let t = ref (-1.0) in
  fun () ->
    t := !t +. 1.0;
    !t

let make ?(clock = wall_clock) sink = { enabled = true; clock; sink }

let global = ref null
let set_global ctx = global := ctx
let get_global () = !global
let resolve = function Some ctx -> ctx | None -> !global

let enabled ctx = ctx.enabled

let emit ctx body =
  if ctx.enabled then ctx.sink.emit { ts = ctx.clock (); body }

let flush ctx = ctx.sink.flush ()

let span ctx name f =
  if not ctx.enabled then f ()
  else begin
    emit ctx (Span_open { name });
    Fun.protect ~finally:(fun () -> emit ctx (Span_close { name })) f
  end

let counter ctx name value = emit ctx (Counter { name; value })
let mark ctx name = emit ctx (Mark { name })

let hop ctx ~kind ~src ~dst ~cost ~total ~phase =
  emit ctx (Hop { kind; src; dst; cost; total; phase })

let message ctx ~node ~round ~time = emit ctx (Message { node; round; time })

let balanced_spans events =
  let rec go stack = function
    | [] -> stack = []
    | { body = Span_open { name }; _ } :: rest -> go (name :: stack) rest
    | { body = Span_close { name }; _ } :: rest -> (
      match stack with
      | top :: stack' when top = name -> go stack' rest
      | _ -> false)
    | _ :: rest -> go stack rest
  in
  go [] events
