type hist = {
  buckets : float array;
  counts : int array;  (* length = Array.length buckets + 1 (overflow) *)
  mutable count : int;
  mutable sum : float;
}

type instrument =
  | I_counter of { mutable total : float }
  | I_gauge of { mutable value : float }
  | I_histogram of hist

type t = {
  tbl : (string, instrument) Hashtbl.t;
  mutable open_spans : (string * float) list;  (* LIFO stack for the sink *)
}

let create () = { tbl = Hashtbl.create 64; open_spans = [] }

let kind_label = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let wrong_kind name got want =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_label got)
       want)

let inc t name v =
  if v < 0.0 then invalid_arg "Metrics.inc: negative increment";
  match Hashtbl.find_opt t.tbl name with
  | None -> Hashtbl.replace t.tbl name (I_counter { total = v })
  | Some (I_counter c) -> c.total <- c.total +. v
  | Some i -> wrong_kind name i "counter"

let set t name v =
  match Hashtbl.find_opt t.tbl name with
  | None -> Hashtbl.replace t.tbl name (I_gauge { value = v })
  | Some (I_gauge g) -> g.value <- v
  | Some i -> wrong_kind name i "gauge"

(* 2^-10 .. 2^10: spans (seconds), hop costs, and round numbers all fit. *)
let default_buckets = Array.init 21 (fun i -> 2.0 ** float_of_int (i - 10))

let check_buckets name buckets =
  if Array.length buckets = 0 then
    invalid_arg (Printf.sprintf "Metrics.observe: %s: empty buckets" name);
  Array.iteri
    (fun i b ->
      if i > 0 && not (b > buckets.(i - 1)) then
        invalid_arg
          (Printf.sprintf "Metrics.observe: %s: buckets not increasing" name))
    buckets

let hist_observe h v =
  let n = Array.length h.buckets in
  let rec slot i = if i >= n || h.buckets.(i) >= v then i else slot (i + 1) in
  h.counts.(slot 0) <- h.counts.(slot 0) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v

let observe t ?buckets name v =
  match Hashtbl.find_opt t.tbl name with
  | None ->
    let buckets =
      match buckets with
      | None -> default_buckets
      | Some b ->
        check_buckets name b;
        Array.copy b
    in
    let h =
      { buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        count = 0;
        sum = 0.0 }
    in
    hist_observe h v;
    Hashtbl.replace t.tbl name (I_histogram h)
  | Some (I_histogram h) ->
    let same_bounds b =
      Array.length b = Array.length h.buckets
      && Array.for_all2 Float.equal b h.buckets
    in
    (match buckets with
    | Some b when not (same_bounds b) ->
      invalid_arg
        (Printf.sprintf "Metrics.observe: %s: conflicting bucket bounds" name)
    | _ -> ());
    hist_observe h v
  | Some i -> wrong_kind name i "histogram"

type entry =
  | Counter of float
  | Gauge of float
  | Histogram of {
      buckets : float array;
      counts : int array;
      count : int;
      sum : float;
    }

let entry_of = function
  | I_counter c -> Counter c.total
  | I_gauge g -> Gauge g.value
  | I_histogram h ->
    Histogram
      { buckets = Array.copy h.buckets;
        counts = Array.copy h.counts;
        count = h.count;
        sum = h.sum }

let snapshot t =
  Hashtbl.fold (fun name i acc -> (name, entry_of i) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name = Option.map entry_of (Hashtbl.find_opt t.tbl name)

let clear t =
  Hashtbl.reset t.tbl;
  t.open_spans <- []

let to_json t =
  let buf = Buffer.create 512 in
  let fl = Sinks.json_float in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, entry) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S:" name);
      match entry with
      | Counter v ->
        Buffer.add_string buf
          (Printf.sprintf "{\"kind\":\"counter\",\"value\":%s}" (fl v))
      | Gauge v ->
        Buffer.add_string buf
          (Printf.sprintf "{\"kind\":\"gauge\",\"value\":%s}" (fl v))
      | Histogram { buckets; counts; count; sum } ->
        Buffer.add_string buf
          (Printf.sprintf "{\"kind\":\"histogram\",\"count\":%d,\"sum\":%s,"
             count (fl sum));
        Buffer.add_string buf "\"le\":[";
        Array.iteri
          (fun i b ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (fl b))
          buckets;
        Buffer.add_string buf "],\"counts\":[";
        Array.iteri
          (fun i c ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (string_of_int c))
          counts;
        Buffer.add_string buf "]}")
    (snapshot t);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Trace adapter: see the .mli for the exact folding rules. Span pairs are
   matched LIFO by name, mirroring Trace.balanced_spans; an unmatched
   close is ignored rather than corrupting the stack. *)
let sink t =
  (* levels collapse: "route.hops.zoom" counts all zoom levels *)
  let phase_key = Trace.phase_label in
  let emit (ev : Trace.event) =
    match ev.body with
    | Trace.Counter { name; value } -> set t name value
    | Trace.Mark _ -> ()
    | Trace.Hop { cost; phase; _ } ->
      let p = phase_key phase in
      inc t "route.hops" 1.0;
      inc t ("route.hops." ^ p) 1.0;
      inc t ("route.cost." ^ p) cost;
      observe t "route.hop_cost" cost
    | Trace.Span_open { name } ->
      t.open_spans <- (name, ev.ts) :: t.open_spans
    | Trace.Span_close { name } -> (
      match t.open_spans with
      | (top, t0) :: rest when String.equal top name ->
        t.open_spans <- rest;
        inc t ("span." ^ name ^ ".count") 1.0;
        inc t ("span." ^ name ^ ".seconds") (Float.max 0.0 (ev.ts -. t0))
      | _ -> ())
    | Trace.Message { round; _ } ->
      inc t "network.delivered" 1.0;
      observe t "network.round" (float_of_int round)
  in
  { Trace.emit; flush = ignore }
