(* Streaming traffic telemetry (see live.mli). Internally: a ring of
   per-window accumulators keyed by a logical clock, log-bucket quantile
   sketches, Space-Saving heavy-hitter tables, and exact per-edge
   Hashtbls mutated in place on the hot path. Every accessor folds and
   sorts (the lib/obs exemption from the cr_lint determinism rule), so
   output order is a function of contents only. *)

module Qsketch = struct
  (* Log-spaced bucket counters: bucket 0 is the underflow, bucket
     [buckets - 1] the overflow, and bucket i (0 < i < buckets - 1)
     holds [bounds.(i-1), bounds.(i)) where bounds grow by a fixed
     ratio gamma. Bucketing goes through binary search over the
     precomputed bounds (never a per-add log), so placement is exact by
     construction and identical on every host. *)

  let buckets = 512
  let v_min = 1e-3
  let gamma = 1.04
  let rank_error_bound = sqrt gamma -. 1.0

  (* bounds.(i) is the exclusive upper edge of bucket i + 1; computed by
     iterated multiplication so adjacent bounds differ by exactly one
     float multiply. *)
  let bounds =
    let b = Array.make (buckets - 1) v_min in
    for i = 1 to buckets - 2 do
      b.(i) <- b.(i - 1) *. gamma
    done;
    b

  type t = {
    counts : int array;
    mutable total : int;
    mutable q_sum : float;
    mutable q_min : float;
    mutable q_max : float;
  }

  let create () =
    { counts = Array.make buckets 0;
      total = 0;
      q_sum = 0.0;
      q_min = infinity;
      q_max = neg_infinity }

  (* Smallest i with x < bounds.(i), i.e. the bucket of an in-range x;
     precondition: x >= bounds.(0) and x < bounds.(buckets - 2). *)
  let rec search x lo hi =
    if lo = hi then lo
    else
      let mid = (lo + hi) / 2 in
      if x < bounds.(mid) then search x lo mid else search x (mid + 1) hi

  let index_of x =
    if not (x >= v_min) then 0 (* underflow; catches negatives and NaN *)
    else if x >= bounds.(buckets - 2) then buckets - 1
    else search x 0 (buckets - 2)

  let add t x =
    let i = index_of x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.q_sum <- t.q_sum +. x;
    if x < t.q_min then t.q_min <- x;
    if x > t.q_max then t.q_max <- x

  let count t = t.total
  let sum t = t.q_sum
  let min_value t = t.q_min
  let max_value t = t.q_max

  (* Geometric midpoint of bucket i's range: for any sample x in the
     bucket, |rep - x| <= (sqrt gamma - 1) * x. *)
  let representative i = sqrt (bounds.(i - 1) *. bounds.(i))

  let quantile t p =
    if t.total = 0 then 0.0
    else begin
      let rank =
        let r = int_of_float (Float.ceil (p *. float_of_int t.total)) in
        Int.max 1 (Int.min t.total r)
      in
      let i = ref 0 and seen = ref 0 in
      while !seen + t.counts.(!i) < rank do
        seen := !seen + t.counts.(!i);
        incr i
      done;
      if !i = 0 then t.q_min
      else if !i = buckets - 1 then t.q_max
      else Float.min t.q_max (Float.max t.q_min (representative !i))
    end

  let merge a b =
    let t = create () in
    for i = 0 to buckets - 1 do
      t.counts.(i) <- a.counts.(i) + b.counts.(i)
    done;
    t.total <- a.total + b.total;
    t.q_sum <- a.q_sum +. b.q_sum;
    t.q_min <- Float.min a.q_min b.q_min;
    t.q_max <- Float.max a.q_max b.q_max;
    t
end

module Topk = struct
  (* Space-Saving (Metwally et al.): at capacity, the minimum counter is
     reassigned to the arriving key and its old count becomes the new
     entry's error bound. The evicted minimum is unique under the
     (count, key) tie-break, so the sketch is a pure function of the
     stream. *)

  type cell = {
    mutable c_count : int;
    mutable c_err : int;
  }

  type entry = {
    key : int;
    count : int;
    err : int;
  }

  type t = {
    cap : int;
    mutable tk_total : int;
    cells : (int, cell) Hashtbl.t;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Live.Topk.create: capacity must be > 0";
    { cap = capacity; tk_total = 0; cells = Hashtbl.create capacity }

  let capacity t = t.cap
  let total t = t.tk_total

  (* The (count, key)-minimal tracked entry; deterministic because the
     key component is unique. *)
  let minimum t =
    Hashtbl.fold
      (fun key cell acc ->
        match acc with
        | None -> Some (key, cell)
        | Some (bk, bc) ->
          if
            cell.c_count < bc.c_count
            || (cell.c_count = bc.c_count && key < bk)
          then Some (key, cell)
          else acc)
      t.cells None

  let add ?(weight = 1) t key =
    if weight <= 0 then invalid_arg "Live.Topk.add: weight must be > 0";
    t.tk_total <- t.tk_total + weight;
    match Hashtbl.find_opt t.cells key with
    | Some cell -> cell.c_count <- cell.c_count + weight
    | None ->
      if Hashtbl.length t.cells < t.cap then
        Hashtbl.add t.cells key { c_count = weight; c_err = 0 }
      else begin
        match minimum t with
        | None -> assert false (* cap > 0 and the table is full *)
        | Some (mk, mc) ->
          Hashtbl.remove t.cells mk;
          Hashtbl.add t.cells key
            { c_count = mc.c_count + weight; c_err = mc.c_count }
      end

  let cmp_entry a b =
    match Int.compare b.count a.count with
    | 0 -> (
      match Int.compare a.err b.err with 0 -> Int.compare a.key b.key | c -> c)
    | c -> c

  let entries t =
    Hashtbl.fold
      (fun key c acc -> { key; count = c.c_count; err = c.c_err } :: acc)
      t.cells []
    |> List.sort cmp_entry

  let top t ~k = List.filteri (fun i _ -> i < k) (entries t)

  (* The largest count a key absent from the sketch could have absorbed:
     0 below capacity (absent means never seen), else the minimum
     counter. *)
  let floor_of t =
    if Hashtbl.length t.cells < t.cap then 0
    else match minimum t with None -> 0 | Some (_, mc) -> mc.c_count

  let merge a b =
    let fa = floor_of a and fb = floor_of b in
    let combined =
      Hashtbl.fold
        (fun key (ca : cell) acc ->
          match Hashtbl.find_opt b.cells key with
          | Some cb ->
            { key;
              count = ca.c_count + cb.c_count;
              err = ca.c_err + cb.c_err }
            :: acc
          | None ->
            { key; count = ca.c_count + fb; err = ca.c_err + fb } :: acc)
        a.cells []
    in
    let combined =
      Hashtbl.fold
        (fun key (cb : cell) acc ->
          match Hashtbl.find_opt a.cells key with
          | Some _ -> acc
          | None ->
            { key; count = cb.c_count + fa; err = cb.c_err + fa } :: acc)
        b.cells combined
    in
    let t = create ~capacity:(Int.max a.cap b.cap) in
    t.tk_total <- a.tk_total + b.tk_total;
    List.iteri
      (fun i e ->
        if i < t.cap then
          Hashtbl.add t.cells e.key { c_count = e.count; c_err = e.err })
      (List.sort cmp_entry combined);
    t
end

type status = Delivered | Rerouted | Undeliverable

(* Node ids are packed into Topk edge keys as (u << 20) | v. *)
let id_limit = 1 lsl 20

type cell = { mutable n : int }

type window = {
  w_index : int;
  mutable w_routes : int;
  mutable w_delivered : int;
  mutable w_rerouted : int;
  mutable w_undeliverable : int;
  w_stretch : Qsketch.t;
  w_hops : Qsketch.t;
  w_latency : Qsketch.t;
  w_edges : (int * int, cell) Hashtbl.t;
  mutable w_edge_messages : int;
  mutable w_util_max : int;
  w_dst : Topk.t;
  w_src : Topk.t;
  w_edge : Topk.t;
}

type t = {
  on : bool;
  window : int;
  depth : int;
  k : int;
  cap : int;
  mutable clock : int;
  ring : window option array;  (* slot = window index mod depth *)
  mutable n_evicted : int;
  (* run-level accumulators, immune to window eviction *)
  mutable r_routes : int;
  mutable r_delivered : int;
  mutable r_rerouted : int;
  mutable r_undeliverable : int;
  r_stretch : Qsketch.t;
  r_edges : (int * int, cell) Hashtbl.t;
  mutable r_edge_messages : int;
  mutable r_util_max : int;
  r_dst : Topk.t;
  r_src : Topk.t;
}

type edge_load = {
  u : int;
  v : int;
  messages : int;
}

type hot = {
  hot_key : int;
  hot_count : int;
  hot_err : int;
}

type hot_edge = {
  he_u : int;
  he_v : int;
  he_count : int;
  he_err : int;
}

type window_stats = {
  ws_index : int;
  ws_routes : int;
  ws_delivered : int;
  ws_rerouted : int;
  ws_undeliverable : int;
  ws_delivery_rate : float;
  ws_stretch_p50 : float;
  ws_stretch_p95 : float;
  ws_stretch_p99 : float;
  ws_stretch_max : float;
  ws_hops_p50 : float;
  ws_hops_p99 : float;
  ws_latency_p50 : float;
  ws_latency_p99 : float;
  ws_edge_messages : int;
  ws_util_max : int;
  ws_edges_touched : int;
  ws_top_edges : hot_edge list;
  ws_top_dsts : hot list;
  ws_top_srcs : hot list;
}

type totals = {
  t_routes : int;
  t_delivered : int;
  t_rerouted : int;
  t_undeliverable : int;
  t_delivery_rate : float;
  t_stretch_p50 : float;
  t_stretch_p95 : float;
  t_stretch_p99 : float;
  t_stretch_max : float;
  t_edge_messages : int;
  t_util_max : int;
}

let make on ~window ~depth ~k ~capacity =
  { on;
    window;
    depth;
    k;
    cap = capacity;
    clock = 0;
    ring = Array.make depth None;
    n_evicted = 0;
    r_routes = 0;
    r_delivered = 0;
    r_rerouted = 0;
    r_undeliverable = 0;
    r_stretch = Qsketch.create ();
    r_edges = Hashtbl.create 64;
    r_edge_messages = 0;
    r_util_max = 0;
    r_dst = Topk.create ~capacity;
    r_src = Topk.create ~capacity }

let null = make false ~window:1 ~depth:1 ~k:1 ~capacity:1

let create ?(window = 256) ?(depth = 8) ?(k = 5) ?(capacity = 64) () =
  if window <= 0 then invalid_arg "Live.create: window must be > 0";
  if depth <= 0 then invalid_arg "Live.create: depth must be > 0";
  if k <= 0 then invalid_arg "Live.create: k must be > 0";
  if capacity < k then invalid_arg "Live.create: capacity must be >= k";
  make true ~window ~depth ~k ~capacity

let enabled t = t.on
let window_size t = t.window
let depth t = t.depth
let top_k t = t.k
let clock t = t.clock
let evicted t = t.n_evicted

let fresh_window t wi =
  { w_index = wi;
    w_routes = 0;
    w_delivered = 0;
    w_rerouted = 0;
    w_undeliverable = 0;
    w_stretch = Qsketch.create ();
    w_hops = Qsketch.create ();
    w_latency = Qsketch.create ();
    w_edges = Hashtbl.create 64;
    w_edge_messages = 0;
    w_util_max = 0;
    w_dst = Topk.create ~capacity:t.cap;
    w_src = Topk.create ~capacity:t.cap;
    w_edge = Topk.create ~capacity:t.cap }

(* The window owning the current tick ([tick] 1..window is window 0);
   recording before the first tick lands in window 0. *)
let cur_index t = if t.clock = 0 then 0 else (t.clock - 1) / t.window

let current t =
  let wi = cur_index t in
  let slot = wi mod t.depth in
  match t.ring.(slot) with
  | Some w when w.w_index = wi -> w
  | prev ->
    if Option.is_some prev then t.n_evicted <- t.n_evicted + 1;
    let w = fresh_window t wi in
    t.ring.(slot) <- Some w;
    w

let tick_enabled t =
  t.clock <- t.clock + 1;
  ignore (current t : window)

let record_enabled t ~src ~dst ~status ~dist ~cost ~hops =
  let w = current t in
  w.w_routes <- w.w_routes + 1;
  t.r_routes <- t.r_routes + 1;
  (match status with
  | Delivered ->
    w.w_delivered <- w.w_delivered + 1;
    t.r_delivered <- t.r_delivered + 1
  | Rerouted ->
    w.w_rerouted <- w.w_rerouted + 1;
    t.r_rerouted <- t.r_rerouted + 1
  | Undeliverable ->
    w.w_undeliverable <- w.w_undeliverable + 1;
    t.r_undeliverable <- t.r_undeliverable + 1);
  (if status <> Undeliverable && dist > 0.0 then begin
     let stretch = cost /. dist in
     Qsketch.add w.w_stretch stretch;
     Qsketch.add t.r_stretch stretch;
     Qsketch.add w.w_hops (float_of_int hops);
     Qsketch.add w.w_latency cost
   end);
  Topk.add w.w_dst dst;
  Topk.add w.w_src src;
  Topk.add t.r_dst dst;
  Topk.add t.r_src src

let bump tbl key =
  let c =
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
      let c = { n = 0 } in
      Hashtbl.add tbl key c;
      c
  in
  c.n <- c.n + 1;
  c.n

let record_edge_enabled t ~src ~dst =
  if
    src >= 0 && dst >= 0 && src <> dst && src < id_limit && dst < id_limit
  then begin
    let key = if src < dst then (src, dst) else (dst, src) in
    let w = current t in
    let wn = bump w.w_edges key in
    w.w_edge_messages <- w.w_edge_messages + 1;
    if wn > w.w_util_max then w.w_util_max <- wn;
    if wn > t.r_util_max then t.r_util_max <- wn;
    ignore (bump t.r_edges key : int);
    t.r_edge_messages <- t.r_edge_messages + 1;
    Topk.add w.w_edge ((fst key lsl 20) lor snd key)
  end

(* The disabled accumulator sits on every routed-message hot path, so
   the off branch must cost one load and one test — the zero-alloc
   proofs pin that down; all bookkeeping lives behind the guard. *)
let[@cr.zero_alloc] tick t =
  if t.on then
    (tick_enabled t
    [@cr.alloc_ok "window rotation allocates fresh sketch state by \
                   design; the hot default is a disabled accumulator"])

let[@cr.zero_alloc] record t ~src ~dst ~status ~dist ~cost ~hops =
  if t.on then
    (record_enabled t ~src ~dst ~status ~dist ~cost ~hops
    [@cr.alloc_ok "enabled-path telemetry feeds sketches and tables by \
                   design; the hot default is a disabled accumulator"])

let[@cr.zero_alloc] record_edge t ~src ~dst =
  if t.on then
    (record_edge_enabled t ~src ~dst
    [@cr.alloc_ok "enabled-path telemetry feeds utilization tables by \
                   design; the hot default is a disabled accumulator"])

let rate ~routes ~arrived =
  if routes = 0 then 1.0 else float_of_int arrived /. float_of_int routes

let hot_of (e : Topk.entry) =
  { hot_key = e.Topk.key; hot_count = e.Topk.count; hot_err = e.Topk.err }

let hot_edge_of (e : Topk.entry) =
  { he_u = e.Topk.key lsr 20;
    he_v = e.Topk.key land (id_limit - 1);
    he_count = e.Topk.count;
    he_err = e.Topk.err }

let qmax sk = if Qsketch.count sk = 0 then 0.0 else Qsketch.max_value sk

let stats_of t w =
  { ws_index = w.w_index;
    ws_routes = w.w_routes;
    ws_delivered = w.w_delivered;
    ws_rerouted = w.w_rerouted;
    ws_undeliverable = w.w_undeliverable;
    ws_delivery_rate =
      rate ~routes:w.w_routes ~arrived:(w.w_delivered + w.w_rerouted);
    ws_stretch_p50 = Qsketch.quantile w.w_stretch 0.50;
    ws_stretch_p95 = Qsketch.quantile w.w_stretch 0.95;
    ws_stretch_p99 = Qsketch.quantile w.w_stretch 0.99;
    ws_stretch_max = qmax w.w_stretch;
    ws_hops_p50 = Qsketch.quantile w.w_hops 0.50;
    ws_hops_p99 = Qsketch.quantile w.w_hops 0.99;
    ws_latency_p50 = Qsketch.quantile w.w_latency 0.50;
    ws_latency_p99 = Qsketch.quantile w.w_latency 0.99;
    ws_edge_messages = w.w_edge_messages;
    ws_util_max = w.w_util_max;
    ws_edges_touched = Hashtbl.length w.w_edges;
    ws_top_edges = List.map hot_edge_of (Topk.top w.w_edge ~k:t.k);
    ws_top_dsts = List.map hot_of (Topk.top w.w_dst ~k:t.k);
    ws_top_srcs = List.map hot_of (Topk.top w.w_src ~k:t.k) }

let windows t =
  Array.to_list t.ring
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> Int.compare a.w_index b.w_index)
  |> List.map (stats_of t)

let totals t =
  { t_routes = t.r_routes;
    t_delivered = t.r_delivered;
    t_rerouted = t.r_rerouted;
    t_undeliverable = t.r_undeliverable;
    t_delivery_rate =
      rate ~routes:t.r_routes ~arrived:(t.r_delivered + t.r_rerouted);
    t_stretch_p50 = Qsketch.quantile t.r_stretch 0.50;
    t_stretch_p95 = Qsketch.quantile t.r_stretch 0.95;
    t_stretch_p99 = Qsketch.quantile t.r_stretch 0.99;
    t_stretch_max = qmax t.r_stretch;
    t_edge_messages = t.r_edge_messages;
    t_util_max = t.r_util_max }

let cmp_uv a b =
  match Int.compare a.u b.u with 0 -> Int.compare a.v b.v | c -> c

let edge_totals t =
  Hashtbl.fold
    (fun (u, v) c acc -> { u; v; messages = c.n } :: acc)
    t.r_edges []
  |> List.sort cmp_uv

let hot_edges t =
  let by_load a b =
    match Int.compare b.messages a.messages with
    | 0 -> cmp_uv a b
    | c -> c
  in
  Hashtbl.fold
    (fun (u, v) c acc -> { u; v; messages = c.n } :: acc)
    t.r_edges []
  |> List.sort by_load
  |> List.filteri (fun i _ -> i < t.k)

let hot_dsts t = List.map hot_of (Topk.top t.r_dst ~k:t.k)
let hot_srcs t = List.map hot_of (Topk.top t.r_src ~k:t.k)

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "live telemetry: clock=%d window=%d depth=%d k=%d evicted=%d\n"
       t.clock t.window t.depth t.k t.n_evicted);
  Buffer.add_string buf
    (Printf.sprintf "%6s %7s %7s %5s %6s %6s %8s %8s %8s %6s %6s\n" "window"
       "routes" "deliv" "rer" "undel" "rate" "str.p50" "str.p95" "str.p99"
       "util" "edges");
  List.iter
    (fun ws ->
      Buffer.add_string buf
        (Printf.sprintf
           "%6d %7d %7d %5d %6d %6.3f %8.3f %8.3f %8.3f %6d %6d\n" ws.ws_index
           ws.ws_routes ws.ws_delivered ws.ws_rerouted ws.ws_undeliverable
           ws.ws_delivery_rate ws.ws_stretch_p50 ws.ws_stretch_p95
           ws.ws_stretch_p99 ws.ws_util_max ws.ws_edges_touched))
    (windows t);
  let s = totals t in
  Buffer.add_string buf
    (Printf.sprintf "%6s %7d %7d %5d %6d %6.3f %8.3f %8.3f %8.3f %6d %6d\n"
       "TOTAL" s.t_routes s.t_delivered s.t_rerouted s.t_undeliverable
       s.t_delivery_rate s.t_stretch_p50 s.t_stretch_p95 s.t_stretch_p99
       s.t_util_max
       (Hashtbl.length t.r_edges));
  Buffer.add_string buf "hot destinations:";
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf " %d:%d(err<=%d)" h.hot_key h.hot_count h.hot_err))
    (hot_dsts t);
  Buffer.add_string buf "\nhot sources:";
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf " %d:%d(err<=%d)" h.hot_key h.hot_count h.hot_err))
    (hot_srcs t);
  Buffer.add_string buf "\nhot edges:";
  List.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf " %d-%d:%d" e.u e.v e.messages))
    (hot_edges t);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let emit ctx t =
  if Trace.enabled ctx then begin
    let s = totals t in
    Trace.counter ctx "live.routes" (float_of_int s.t_routes);
    Trace.counter ctx "live.delivered" (float_of_int s.t_delivered);
    Trace.counter ctx "live.rerouted" (float_of_int s.t_rerouted);
    Trace.counter ctx "live.undeliverable" (float_of_int s.t_undeliverable);
    Trace.counter ctx "live.delivery_rate" s.t_delivery_rate;
    Trace.counter ctx "live.stretch.p50" s.t_stretch_p50;
    Trace.counter ctx "live.stretch.p95" s.t_stretch_p95;
    Trace.counter ctx "live.stretch.p99" s.t_stretch_p99;
    Trace.counter ctx "live.edge_messages" (float_of_int s.t_edge_messages);
    Trace.counter ctx "live.util.max" (float_of_int s.t_util_max);
    Trace.counter ctx "live.windows"
      (float_of_int (List.length (windows t)));
    Trace.counter ctx "live.clock" (float_of_int t.clock)
  end
