(** Concrete event sinks: drop, duplicate, in-memory ring, JSONL writer.

    The JSONL encoding is one JSON object per event per line with a stable
    field order and deterministic float formatting, so a trace produced
    with a {!Trace.counting_clock} is byte-reproducible. *)

(** [json_of_event ev] is the one-line JSON encoding used by {!jsonl}. *)
val json_of_event : Trace.event -> string

(** Deterministic float rendering shared by the exporters (and by the
    bench report encoder). Non-finite values become the quoted JSON
    strings ["NaN"], ["Infinity"], ["-Infinity"] — always a valid JSON
    token, never a bare [nan]/[inf]. *)
val json_float : float -> string

(** [json_string s] is [s] as a quoted, escaped JSON string token. *)
val json_string : string -> string

(** Drops everything (same as {!Trace.null_sink}). *)
val null : Trace.sink

(** [tee a b] forwards every event to both sinks. *)
val tee : Trace.sink -> Trace.sink -> Trace.sink

(** [jsonl oc] writes one JSON line per event to [oc]; [flush] flushes the
    channel (the caller closes it). *)
val jsonl : out_channel -> Trace.sink

(** A bounded in-memory ring buffer: cheap enough to attach to hot routes,
    keeps the most recent [capacity] events. *)
module Memory : sig
  type t

  (** [create ?capacity ()] (default capacity 65536). Raises
      [Invalid_argument] on non-positive capacity. *)
  val create : ?capacity:int -> unit -> t

  val capacity : t -> int
  val sink : t -> Trace.sink

  (** [events t] in emission order, oldest retained event first. *)
  val events : t -> Trace.event list

  (** [length t] is the number of retained events. *)
  val length : t -> int

  (** [dropped t] counts events evicted by the ring since creation. *)
  val dropped : t -> int

  val clear : t -> unit
end
