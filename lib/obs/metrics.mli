(** A typed metrics registry: counters, gauges, and fixed-bucket
    histograms, aggregated in memory and snapshotted deterministically.

    The registry is the aggregation half of the observability layer: where
    {!Trace} streams individual events to a sink, [Metrics] folds them
    into a small, named summary — how many hops per phase, how long each
    construction span took, how message rounds distribute — that the bench
    harness serializes into machine-readable [BENCH_*.json] reports and
    [cr_report] diffs between runs.

    Names are flat dotted strings (["route.hops.zoom"]). A name is bound
    to one instrument kind for the registry's lifetime; mixing kinds under
    one name raises [Invalid_argument] — a typed registry never silently
    coerces. {!snapshot} orders entries by name (the [Cr_metric.Tbl]
    discipline: traversals are a function of contents, never of hash
    order), so two registries fed the same updates render byte-identical
    JSON.

    Registries are not thread-safe, exactly like sinks: feed them from the
    calling domain only. In library hot paths, registry updates must be
    dominated by a [Trace.enabled] guard (enforced by the [cr_lint]
    trace-guard rule) so unobserved runs pay nothing. *)

type t

val create : unit -> t

(** {1 Instruments} *)

(** [inc t name v] adds [v] to the counter [name] (creating it at 0).
    Counters are monotone sums; [v] must be non-negative. *)
val inc : t -> string -> float -> unit

(** [set t name v] sets the gauge [name] to [v] (last write wins). *)
val set : t -> string -> float -> unit

(** [observe t ?buckets name v] records [v] into the histogram [name].
    The bucket upper bounds are fixed by the first [observe] of that name
    ([buckets] defaults to {!default_buckets}) and must be strictly
    increasing; later calls may omit [buckets] (a different bucket array
    for an existing histogram raises). A value lands in the first bucket
    whose bound is [>= v]; values above every bound land in the implicit
    overflow bucket. *)
val observe : t -> ?buckets:float array -> string -> float -> unit

(** Default histogram bounds: powers of two from 2^-10 to 2^10 — wide
    enough for seconds-scale span durations, hop costs, and round
    numbers alike. *)
val default_buckets : float array

(** {1 Snapshots} *)

type entry =
  | Counter of float
  | Gauge of float
  | Histogram of {
      buckets : float array;  (** upper bounds, strictly increasing *)
      counts : int array;  (** per-bucket counts + final overflow slot *)
      count : int;  (** total observations *)
      sum : float;  (** sum of observed values *)
    }

(** [snapshot t] is every entry, sorted by name. *)
val snapshot : t -> (string * entry) list

(** [find t name] is the current entry under [name], if any. *)
val find : t -> string -> entry option

val clear : t -> unit

(** [to_json t] renders the snapshot as one deterministic JSON object
    keyed by metric name, using the same float encoding as the JSONL
    trace sink ({!Sinks.json_float}). *)
val to_json : t -> string

(** {1 Trace adapter} *)

(** [sink t] folds a trace event stream into the registry, so every
    existing instrumentation point feeds it for free:

    - [Counter {name; value}] sets the gauge [name] (trace counters carry
      absolute values, e.g. final table-bit totals);
    - [Hop {kind; cost; phase; _}] increments the counters ["route.hops"],
      ["route.hops." ^ phase], ["route.cost." ^ phase] (by [cost]) and
      observes [cost] into the ["route.hop_cost"] histogram;
    - [Span_open]/[Span_close] pairs (LIFO, by name) increment
      ["span." ^ name ^ ".count"] and add the duration to
      ["span." ^ name ^ ".seconds"];
    - [Message {round; _}] increments ["network.delivered"] and observes
      [round] into the ["network.round"] histogram;
    - [Mark] events are ignored (their names are free-form).

    [flush] is a no-op. *)
val sink : t -> Trace.sink
