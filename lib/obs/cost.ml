(* CONGEST cost accounting (see cost.mli). Internally two hash tables —
   undirected-edge cells and phase cells — mutated in place on the hot
   path; every accessor folds and sorts (the lib/obs exemption from the
   cr_lint determinism rule), so output order is a function of contents
   only. *)

type cell = {
  mutable c_messages : int;
  mutable c_bits : int;
}

type phase_cell = {
  p_order : int;  (* first-seen order, for stable phase listing *)
  mutable p_messages : int;
  mutable p_bits : int;
  mutable p_max_round : int;  (* -1 while the phase is empty *)
  p_rounds : (int, int) Hashtbl.t;  (* round -> deliveries *)
}

type t = {
  on : bool;
  edges : (int * int, cell) Hashtbl.t;
  by_phase : (string, phase_cell) Hashtbl.t;
  mutable next_order : int;
}

type edge_load = {
  u : int;
  v : int;
  messages : int;
  bits : int;
}

type phase_total = {
  phase : string;
  messages : int;
  bits : int;
  rounds : int;
  round_histogram : (int * int) list;
}

type summary = {
  total_messages : int;
  total_bits : int;
  total_rounds : int;
  max_edge_messages : int;
  max_edge_bits : int;
}

let make on =
  { on; edges = Hashtbl.create 64; by_phase = Hashtbl.create 8; next_order = 0 }

let null = make false
let create () = make true
let enabled t = t.on

let phase_cell t phase =
  match Hashtbl.find_opt t.by_phase phase with
  | Some pc -> pc
  | None ->
    let pc =
      { p_order = t.next_order;
        p_messages = 0;
        p_bits = 0;
        p_max_round = -1;
        p_rounds = Hashtbl.create 16 }
    in
    t.next_order <- t.next_order + 1;
    Hashtbl.add t.by_phase phase pc;
    pc

let record_enabled t ~phase ~src ~dst ~round ~bits =
  begin
    let pc = phase_cell t phase in
    pc.p_messages <- pc.p_messages + 1;
    pc.p_bits <- pc.p_bits + bits;
    if round > pc.p_max_round then pc.p_max_round <- round;
    let prev =
      match Hashtbl.find_opt pc.p_rounds round with Some n -> n | None -> 0
    in
    Hashtbl.replace pc.p_rounds round (prev + 1);
    if src >= 0 && dst >= 0 && src <> dst then begin
      let key = if src < dst then (src, dst) else (dst, src) in
      let cell =
        match Hashtbl.find_opt t.edges key with
        | Some c -> c
        | None ->
          let c = { c_messages = 0; c_bits = 0 } in
          Hashtbl.add t.edges key c;
          c
      in
      cell.c_messages <- cell.c_messages + 1;
      cell.c_bits <- cell.c_bits + bits
    end
  end

(* The null accumulator sits on every message-delivery hot path, so the
   disabled branch must cost one load and one test — the zero-alloc
   proof pins that down; all bookkeeping lives behind the guard. *)
let[@cr.zero_alloc] record t ~phase ~src ~dst ~round ~bits =
  if t.on then
    (record_enabled t ~phase ~src ~dst ~round ~bits
    [@cr.alloc_ok "enabled-path accounting allocates ledger cells by \
                   design; the hot default is a disabled accumulator"])

let reset t =
  Hashtbl.reset t.edges;
  Hashtbl.reset t.by_phase;
  t.next_order <- 0

let cmp_uv a b =
  match Int.compare a.u b.u with 0 -> Int.compare a.v b.v | c -> c

let edge_loads t =
  Hashtbl.fold
    (fun (u, v) c acc ->
      { u; v; messages = c.c_messages; bits = c.c_bits } :: acc)
    t.edges []
  |> List.sort cmp_uv

let top_edges t ~k =
  let by_load (a : edge_load) (b : edge_load) =
    match Int.compare b.messages a.messages with
    | 0 -> (
      match Int.compare b.bits a.bits with 0 -> cmp_uv a b | c -> c)
    | c -> c
  in
  let all =
    Hashtbl.fold
      (fun (u, v) c acc ->
        { u; v; messages = c.c_messages; bits = c.c_bits } :: acc)
      t.edges []
    |> List.sort by_load
  in
  List.filteri (fun i _ -> i < k) all

let phases t =
  Hashtbl.fold (fun phase pc acc -> (phase, pc) :: acc) t.by_phase []
  |> List.sort (fun (_, a) (_, b) -> Int.compare a.p_order b.p_order)
  |> List.map (fun (phase, pc) ->
         let round_histogram =
           Hashtbl.fold (fun r n acc -> (r, n) :: acc) pc.p_rounds []
           |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
         in
         { phase;
           messages = pc.p_messages;
           bits = pc.p_bits;
           rounds = pc.p_max_round + 1;
           round_histogram })

let summary t =
  let total_messages, total_bits, total_rounds =
    Hashtbl.fold
      (fun _ pc (m, b, r) ->
        (m + pc.p_messages, b + pc.p_bits, r + pc.p_max_round + 1))
      t.by_phase (0, 0, 0)
  in
  let max_edge_messages, max_edge_bits =
    Hashtbl.fold
      (fun _ c (mm, mb) -> (Int.max mm c.c_messages, Int.max mb c.c_bits))
      t.edges (0, 0)
  in
  { total_messages; total_bits; total_rounds; max_edge_messages; max_edge_bits }

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-36s %8s %12s %14s\n" "phase" "rounds" "messages" "bits");
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-36s %8d %12d %14d\n" p.phase p.rounds p.messages
           p.bits))
    (phases t);
  let s = summary t in
  Buffer.add_string buf
    (Printf.sprintf "%-36s %8d %12d %14d\n" "TOTAL" s.total_rounds
       s.total_messages s.total_bits);
  Buffer.add_string buf
    (Printf.sprintf "max edge load: %d messages, %d bits over %d edges\n"
       s.max_edge_messages s.max_edge_bits (Hashtbl.length t.edges));
  Buffer.contents buf

let emit ctx t =
  if Trace.enabled ctx then begin
    let s = summary t in
    Trace.counter ctx "cost.messages" (float_of_int s.total_messages);
    Trace.counter ctx "cost.bits" (float_of_int s.total_bits);
    Trace.counter ctx "cost.rounds" (float_of_int s.total_rounds);
    Trace.counter ctx "cost.max_edge_messages"
      (float_of_int s.max_edge_messages);
    Trace.counter ctx "cost.max_edge_bits" (float_of_int s.max_edge_bits);
    List.iter
      (fun p ->
        let base = "cost.phase." ^ p.phase in
        Trace.counter ctx (base ^ ".messages") (float_of_int p.messages);
        Trace.counter ctx (base ^ ".bits") (float_of_int p.bits);
        Trace.counter ctx (base ^ ".rounds") (float_of_int p.rounds))
      (phases t)
  end

let to_metrics registry t =
  let s = summary t in
  Metrics.inc registry "cost.messages" (float_of_int s.total_messages);
  Metrics.inc registry "cost.bits" (float_of_int s.total_bits);
  Metrics.inc registry "cost.rounds" (float_of_int s.total_rounds);
  Metrics.inc registry "cost.max_edge_messages"
    (float_of_int s.max_edge_messages);
  Metrics.inc registry "cost.max_edge_bits" (float_of_int s.max_edge_bits);
  List.iter
    (fun p ->
      let base = "cost.phase." ^ p.phase in
      Metrics.inc registry (base ^ ".messages") (float_of_int p.messages);
      Metrics.inc registry (base ^ ".bits") (float_of_int p.bits);
      Metrics.inc registry (base ^ ".rounds") (float_of_int p.rounds))
    (phases t)
