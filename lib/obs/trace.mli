(** Structured tracing for route execution, scheme construction, and the
    distributed simulator.

    The unit of observation is the {!event}: a timestamped span boundary,
    counter, per-hop route event (tagged with the paper phase that caused
    it), or protocol message delivery. Events flow into a pluggable
    {!sink}; a disabled {!context} (the default) reduces every
    instrumentation point to a single boolean test, so uninstrumented runs
    pay essentially nothing.

    Contexts are passed explicitly ([?obs] parameters throughout the
    library) or installed globally with {!set_global}; callers that don't
    care pass nothing and inherit the global context, which starts out as
    {!null}. *)

(** The algorithmic phase a route event belongs to, mirroring the paper's
    execution traces: Figure 1's zooming sequence with per-level ball
    searches (name-independent schemes) and Figure 2's net / Voronoi-tree /
    search-tree phases (labeled schemes). [Deliver] is the final descent to
    the destination once its label is known; [Fallback] marks hops off the
    theorem's fast path; [Teleport] tags out-of-band hand-offs that occur
    outside any phase; [Faults] tags every hop taken after a degraded-mode
    reroute (Cr_sim.Walker failover), so stretch inflation under failures
    is attributable hop by hop. *)
type phase =
  | Unphased
  | Zoom of int  (** climbing to the level-[i] hub of the zooming sequence *)
  | Ball_search of int  (** SearchTree round trip at level [i] *)
  | Net_phase  (** greedy ring/net descent of the labeled schemes *)
  | Voronoi_phase  (** Voronoi cell-tree climb and tree-route *)
  | Search_tree_phase  (** search tree II lookup *)
  | Teleport
  | Deliver
  | Fallback
  | Faults  (** hops taken after a failure-triggered reroute *)

(** [phase_label p] is a stable lowercase tag (no level), e.g. ["zoom"]. *)
val phase_label : phase -> string

(** [phase_level p] is the level parameter of [Zoom]/[Ball_search]. *)
val phase_level : phase -> int option

val pp_phase : Format.formatter -> phase -> unit

(** How a route event moved the packet: a real graph [Edge], a [Jump]
    (teleport at a charged cost), or a [Virtual] charge in place. *)
type hop_kind = Edge | Jump | Virtual

val hop_kind_label : hop_kind -> string

type body =
  | Span_open of { name : string }
  | Span_close of { name : string }
  | Counter of { name : string; value : float }
  | Mark of { name : string }
  | Hop of {
      kind : hop_kind;
      src : int;
      dst : int;
      cost : float;
      total : float;  (** walker's cumulative cost after this hop *)
      phase : phase;
    }
  | Message of { node : int; round : int; time : float }

type event = { ts : float; body : body }

(** Where events go. [flush] is called by long-running writers at natural
    boundaries (end of a run, file close). *)
type sink = {
  emit : event -> unit;
  flush : unit -> unit;
}

type context

(** A sink that drops everything. *)
val null_sink : sink

(** The disabled context: every [emit] is a no-op after one boolean test. *)
val null : context

(** [make ?clock sink] is an enabled context stamping events with [clock]
    (default {!wall_clock}). *)
val make : ?clock:(unit -> float) -> sink -> context

(** Wall-clock seconds (gettimeofday). *)
val wall_clock : unit -> float

(** [counting_clock ()] is a fresh deterministic clock returning 0, 1, 2,
    ... — used wherever traces must be byte-reproducible (golden tests,
    the exp_trace JSONL logs). *)
val counting_clock : unit -> unit -> float

val set_global : context -> unit
val get_global : unit -> context

(** [resolve obs] is [obs] if given, else the global context — the standard
    way [?obs] parameters are defaulted throughout the library. *)
val resolve : context option -> context

val enabled : context -> bool

(** [emit ctx body] stamps and forwards an event; no-op when disabled.
    Hot paths should guard with [if enabled ctx then ...] so the event
    payload is never even allocated. *)
val emit : context -> body -> unit

val flush : context -> unit

(** [span ctx name f] runs [f] between [Span_open]/[Span_close] events
    (close is emitted even if [f] raises). *)
val span : context -> string -> (unit -> 'a) -> 'a

val counter : context -> string -> float -> unit
val mark : context -> string -> unit

val hop :
  context ->
  kind:hop_kind ->
  src:int ->
  dst:int ->
  cost:float ->
  total:float ->
  phase:phase ->
  unit

val message : context -> node:int -> round:int -> time:float -> unit

(** [balanced_spans events] checks span stack discipline: every close
    matches the most recent open, and nothing stays open — the invariant
    the construction spans must maintain. *)
val balanced_spans : event list -> bool
