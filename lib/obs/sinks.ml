let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Deterministic float formatting: integers print as "3", everything else
   with 9 significant digits — stable across runs, which the golden-trace
   tests rely on. JSON has no non-finite number tokens, so NaN and the
   infinities render as the conventional quoted strings (what %g would
   print — bare `nan` / `inf` — is not valid JSON at all). *)
let json_float f =
  if Float.is_nan f then "\"NaN\""
  else if Float.equal f Float.infinity then "\"Infinity\""
  else if Float.equal f Float.neg_infinity then "\"-Infinity\""
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  buf_add_json_string buf s;
  Buffer.contents buf

let json_of_event (ev : Trace.event) =
  let buf = Buffer.create 96 in
  let field_sep () =
    if Buffer.length buf > 1 then Buffer.add_char buf ','
  in
  let str k v =
    field_sep ();
    buf_add_json_string buf k;
    Buffer.add_char buf ':';
    buf_add_json_string buf v
  in
  let num k v =
    field_sep ();
    buf_add_json_string buf k;
    Buffer.add_char buf ':';
    Buffer.add_string buf (json_float v)
  in
  let int k v =
    field_sep ();
    buf_add_json_string buf k;
    Buffer.add_char buf ':';
    Buffer.add_string buf (string_of_int v)
  in
  let phase k p =
    str k (Trace.phase_label p);
    Option.iter (fun l -> int "level" l) (Trace.phase_level p)
  in
  Buffer.add_char buf '{';
  num "ts" ev.ts;
  (match ev.body with
  | Trace.Span_open { name } ->
    str "ev" "span-open";
    str "name" name
  | Trace.Span_close { name } ->
    str "ev" "span-close";
    str "name" name
  | Trace.Counter { name; value } ->
    str "ev" "counter";
    str "name" name;
    num "value" value
  | Trace.Mark { name } ->
    str "ev" "mark";
    str "name" name
  | Trace.Hop { kind; src; dst; cost; total; phase = p } ->
    str "ev" "hop";
    str "kind" (Trace.hop_kind_label kind);
    int "src" src;
    int "dst" dst;
    num "cost" cost;
    num "total" total;
    phase "phase" p
  | Trace.Message { node; round; time } ->
    str "ev" "message";
    int "node" node;
    int "round" round;
    num "time" time);
  Buffer.add_char buf '}';
  Buffer.contents buf

let null = Trace.null_sink

let tee a b =
  { Trace.emit =
      (fun ev ->
        a.Trace.emit ev;
        b.Trace.emit ev);
    flush =
      (fun () ->
        a.Trace.flush ();
        b.Trace.flush ()) }

let jsonl oc =
  { Trace.emit =
      (fun ev ->
        output_string oc (json_of_event ev);
        output_char oc '\n');
    flush = (fun () -> flush oc) }

module Memory = struct
  type t = {
    ring : Trace.event option array;
    mutable next : int;  (* total events ever emitted *)
  }

  let default_capacity = 65_536

  let create ?(capacity = default_capacity) () =
    if capacity <= 0 then invalid_arg "Sinks.Memory.create: capacity <= 0";
    { ring = Array.make capacity None; next = 0 }

  let capacity t = Array.length t.ring

  let emit t ev =
    t.ring.(t.next mod Array.length t.ring) <- Some ev;
    t.next <- t.next + 1

  let sink t = { Trace.emit = emit t; flush = ignore }

  let length t = min t.next (Array.length t.ring)
  let dropped t = max 0 (t.next - Array.length t.ring)

  let events t =
    let cap = Array.length t.ring in
    let len = length t in
    let first = if t.next <= cap then 0 else t.next mod cap in
    List.init len (fun i ->
        match t.ring.((first + i) mod cap) with
        | Some ev -> ev
        | None -> assert false)

  let clear t =
    Array.fill t.ring 0 (Array.length t.ring) None;
    t.next <- 0
end
