(** CONGEST cost accounting: per-edge congestion, per-round message
    totals, and message-bit profiling for the distributed constructions
    and routed traffic (ROADMAP items 4 and 5).

    A {!t} is an accumulator threaded through [Cr_proto.Network] (via
    [?cost] on [Network.create] / [Network.local]) and [Cr_sim.Walker].
    Each delivered message is charged to an undirected edge, a
    construction {e phase} (the protocol stage that sent it), and a
    round; its size in bits comes from a per-protocol
    [measure : msg -> int] hook backed by [lib/codec]'s bitbuf
    encodings.

    Like {!Trace.context}, the accumulator follows the null-context
    pattern: {!null} is permanently disabled and {!record} on it is a
    no-op, so hot paths guard with [if Cost.enabled cost then ...] and
    pay one boolean test when accounting is off. All accessors return
    deterministically ordered data — accounting output is byte-identical
    across [CR_DOMAINS] settings and repeat runs. *)

type t

(** Aggregate load on one undirected edge [(u, v)] with [u < v]. *)
type edge_load = {
  u : int;
  v : int;
  messages : int;  (** deliveries across the edge, either direction *)
  bits : int;  (** total message bits across the edge *)
}

(** Totals for one construction phase (one protocol stage). *)
type phase_total = {
  phase : string;
  messages : int;
  bits : int;
  rounds : int;  (** 1 + the largest round seen in this phase; 0 if idle *)
  round_histogram : (int * int) list;  (** (round, messages), sorted *)
}

type summary = {
  total_messages : int;
  total_bits : int;
  total_rounds : int;  (** sum of per-phase round counts: phases run
                           sequentially, so this is the construction's
                           end-to-end round complexity *)
  max_edge_messages : int;  (** the congestion bound: max messages
                                crossing any single edge *)
  max_edge_bits : int;
}

(** The disabled accumulator: {!enabled} is [false], {!record} is a
    no-op, every accessor reports emptiness. *)
val null : t

(** A fresh enabled accumulator. *)
val create : unit -> t

val enabled : t -> bool

(** [record t ~phase ~src ~dst ~round ~bits] charges one delivered
    message of [bits] bits to phase [phase] at round [round]. When
    [src >= 0], [dst >= 0], and [src <> dst], the message is also
    charged to the undirected edge [(src, dst)]; otherwise (external
    injections, teleports) only the phase totals move. No-op on a
    disabled accumulator. *)
val record : t -> phase:string -> src:int -> dst:int -> round:int -> bits:int -> unit

(** [reset t] drops all accumulated counts (the structure stays
    enabled). *)
val reset : t -> unit

(** All touched edges, sorted by [(u, v)]. *)
val edge_loads : t -> edge_load list

(** [top_edges t ~k] is the [k] most congested edges: messages
    descending, then bits descending, then [(u, v)] ascending. *)
val top_edges : t -> k:int -> edge_load list

(** Phases in first-recorded order. *)
val phases : t -> phase_total list

val summary : t -> summary

(** Deterministic human-readable table: one row per phase plus a totals
    row — the canonical byte-comparable rendering used by tests and
    [crdemo cost]. *)
val render : t -> string

(** [emit ctx t] publishes the summary and per-phase totals as
    {!Trace} counters ([cost.messages], [cost.bits], [cost.rounds],
    [cost.max_edge_messages], [cost.phase.<name>.messages], ...); no-op
    when [ctx] is disabled. *)
val emit : Trace.context -> t -> unit

(** [to_metrics registry t] mirrors {!emit} into a {!Metrics.t}
    registry as counters. *)
val to_metrics : Metrics.t -> t -> unit
