(* Chrome trace_event exporter (chrome://tracing, Perfetto).

   Two kinds of timeline coexist, on separate thread lanes of pid 1:
   - spans and counters live on tid 0 and use the context clock (seconds,
     converted to microseconds);
   - route events live on tid 1, 2, ... (one lane per route, a new lane
     starting at each "route..." mark) and use the walker's *cumulative
     cost* as their clock, scaled by [cost_scale] microseconds per unit of
     cost — so the route lane reads as the paper's execution trace, each
     block a hop labeled with its phase. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fl = Sinks.json_float

let to_string ?(cost_scale = 1000.0) events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let add line =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf line
  in
  let route_tid = ref 1 in
  List.iter
    (fun (ev : Trace.event) ->
      let ts = fl (ev.ts *. 1e6) in
      match ev.body with
      | Trace.Span_open { name } ->
        add
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"build\",\"ph\":\"B\",\"pid\":1,\
              \"tid\":0,\"ts\":%s}"
             (escape name) ts)
      | Trace.Span_close { name } ->
        add
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"build\",\"ph\":\"E\",\"pid\":1,\
              \"tid\":0,\"ts\":%s}"
             (escape name) ts)
      | Trace.Counter { name; value } ->
        add
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\",\"pid\":1,\
              \"tid\":0,\"ts\":%s,\"args\":{\"value\":%s}}"
             (escape name) ts (fl value))
      | Trace.Mark { name } ->
        if String.length name >= 5 && String.sub name 0 5 = "route" then
          incr route_tid;
        add
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"mark\",\"ph\":\"i\",\"pid\":1,\
              \"tid\":%d,\"ts\":%s,\"s\":\"t\"}"
             (escape name) !route_tid ts)
      | Trace.Hop { kind; src; dst; cost; total; phase } ->
        let name =
          match Trace.phase_level phase with
          | Some l -> Printf.sprintf "%s[%d]" (Trace.phase_label phase) l
          | None -> Trace.phase_label phase
        in
        add
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"route\",\"ph\":\"X\",\"pid\":1,\
              \"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{\"kind\":\"%s\",\
              \"src\":%d,\"dst\":%d,\"cost\":%s}}"
             (escape name) !route_tid
             (fl ((total -. cost) *. cost_scale))
             (fl (cost *. cost_scale))
             (Trace.hop_kind_label kind)
             src dst (fl cost))
      | Trace.Message { node; round; time } ->
        add
          (Printf.sprintf
             "{\"name\":\"deliver\",\"cat\":\"proto\",\"ph\":\"i\",\"pid\":2,\
              \"tid\":%d,\"ts\":%s,\"s\":\"t\",\"args\":{\"round\":%d}}"
             node
             (fl (time *. cost_scale))
             round))
    events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* Live windows render as a counter time series: ts = window index (one
   logical window displays as 1ms), one lane per summary counter plus one
   lane per run-level hot edge, so Perfetto draws the utilization
   heatmap's evolution over the run. *)
let live_timeline live =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let add line =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf line
  in
  let counter ~tid ~name ~ts value =
    add
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"live\",\"ph\":\"C\",\"pid\":4,\
          \"tid\":%d,\"ts\":%s,\"args\":{\"value\":%s}}"
         (escape name) tid
         (fl (float_of_int ts *. 1000.0))
         (fl value))
  in
  let hot = Live.hot_edges live in
  List.iter
    (fun (ws : Live.window_stats) ->
      let ts = ws.Live.ws_index in
      counter ~tid:0 ~name:"live.delivery_rate" ~ts ws.Live.ws_delivery_rate;
      counter ~tid:0 ~name:"live.stretch.p50" ~ts ws.Live.ws_stretch_p50;
      counter ~tid:0 ~name:"live.stretch.p99" ~ts ws.Live.ws_stretch_p99;
      counter ~tid:0 ~name:"live.util.max" ~ts
        (float_of_int ws.Live.ws_util_max);
      counter ~tid:0 ~name:"live.edge_messages" ~ts
        (float_of_int ws.Live.ws_edge_messages);
      List.iteri
        (fun rank (e : Live.edge_load) ->
          let count =
            List.fold_left
              (fun acc (he : Live.hot_edge) ->
                if he.Live.he_u = e.Live.u && he.Live.he_v = e.Live.v then
                  he.Live.he_count
                else acc)
              0 ws.Live.ws_top_edges
          in
          counter ~tid:(rank + 1)
            ~name:(Printf.sprintf "edge %d-%d" e.Live.u e.Live.v)
            ~ts (float_of_int count))
        hot)
    (Live.windows live);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let heatmap cost =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let add line =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf line
  in
  (* One counter lane per edge, ranked hottest-first so Perfetto's track
     order reads as the heatmap: the top lanes are the congested edges. *)
  let edges = Cost.top_edges cost ~k:max_int in
  List.iteri
    (fun rank (e : Cost.edge_load) ->
      add
        (Printf.sprintf
           "{\"name\":\"edge %d-%d\",\"cat\":\"congestion\",\"ph\":\"C\",\
            \"pid\":3,\"tid\":%d,\"ts\":0,\"args\":{\"messages\":%d,\
            \"bits\":%d}}"
           e.Cost.u e.Cost.v rank e.Cost.messages e.Cost.bits))
    edges;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf
