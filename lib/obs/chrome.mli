(** Chrome [trace_event] JSON exporter (load in chrome://tracing or
    Perfetto).

    Spans and counters render on one lane against the context clock; each
    route renders on its own lane against a {e cost} timeline — every hop
    is a block whose width is its cost and whose name is its phase tag, the
    machine-readable analog of the paper's Figures 1 and 2. Protocol
    message deliveries render as instants on pid 2, one lane per node.

    [cost_scale] is microseconds of trace time per unit of route cost /
    protocol delay (default 1000.0, i.e. one cost unit displays as 1ms). *)
val to_string : ?cost_scale:float -> Trace.event list -> string

(** [heatmap cost] renders a {!Cost.t} per-edge load table as Chrome
    counter events: one lane per touched edge on pid 3, ranked
    hottest-first, each carrying its message and bit totals — load the
    JSON next to a {!to_string} timeline to see where congestion
    concentrates. *)
val heatmap : Cost.t -> string

(** [live_timeline live] renders a {!Live.t} accumulator as a Chrome
    counter {e time series} on pid 4: the logical clock (window index)
    is the timebase, and each retained window emits delivery-rate /
    stretch-quantile / utilization counters plus one lane per run-level
    hot edge — a per-edge utilization heatmap that evolves over the
    run instead of aggregating it away. *)
val live_timeline : Live.t -> string
