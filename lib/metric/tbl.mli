(** Deterministic views of [Hashtbl] contents.

    [Hashtbl]'s bucket order depends on the hash seed and insertion
    history, so a plain [Hashtbl.fold]/[iter] leaks nondeterminism into
    anything order-sensitive built from it — the exact failure mode the
    [cr_lint] determinism rule forbids in the pooled build paths and the
    protocol layer. This module is the blessed replacement: every
    traversal first sorts the keys with an explicit comparator, so results
    are a function of the table's {e contents} only.

    Tables traversed here must follow the [Hashtbl.replace] discipline (at
    most one binding per key); with [Hashtbl.add]-stacked duplicates the
    relative order of equal keys would again be bucket-dependent. *)

(** [sorted_keys ~cmp tbl] is the keys of [tbl] in ascending [cmp] order. *)
val sorted_keys : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list

(** [sorted_bindings ~cmp tbl] is the bindings ordered by key. *)
val sorted_bindings :
  cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list

(** [iter_sorted ~cmp f tbl] applies [f] to each binding in ascending key
    order. *)
val iter_sorted :
  cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit

(** [fold_sorted ~cmp f tbl init] folds over bindings in ascending key
    order (so e.g. a keep-first minimum extraction tie-breaks toward the
    least key). *)
val fold_sorted :
  cmp:('k -> 'k -> int) ->
  ('k -> 'v -> 'a -> 'a) ->
  ('k, 'v) Hashtbl.t ->
  'a ->
  'a
