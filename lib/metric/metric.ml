module Pool = Cr_par.Pool
module Trace = Cr_obs.Trace

type t = {
  graph : Graph.t;
  n : int;
  dist : float array;  (* row-major n*n distance matrix *)
  sorted_rows : float array array;  (* per-node distances, ascending *)
  sssp : Dijkstra.result array;  (* canonical shortest-path forest per source *)
  min_distance : float;
  diameter : float;
}

let d m u v = m.dist.((u * m.n) + v)

(* The two O(n . Dijkstra) / O(n^2 log n) stages fan out over the pool;
   each source (resp. row) is independent and results land by index, so the
   output is identical to the sequential run (see Cr_par.Pool). Trace
   events are emitted on the calling domain only. *)
let build ~pool graph =
  let n = Graph.n graph in
  if n < 2 then invalid_arg "Metric.of_graph: need at least 2 nodes";
  if not (Graph.is_connected graph) then
    invalid_arg "Metric.of_graph: graph must be connected";
  let ctx = Trace.resolve None in
  let dist = Array.make (n * n) infinity in
  let sssp =
    Pool.stage ctx pool "metric.sssp" @@ fun () ->
    Pool.parallel_init pool n (fun s -> Dijkstra.run graph s)
  in
  for s = 0 to n - 1 do
    Array.blit sssp.(s).dist 0 dist (s * n) n
  done;
  (* Per-source Dijkstra runs can round the same path sum differently;
     force exact symmetry by keeping the smaller value of each pair. *)
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let x = Float.min dist.((u * n) + v) dist.((v * n) + u) in
      dist.((u * n) + v) <- x;
      dist.((v * n) + u) <- x
    done
  done;
  let min_distance = ref infinity and diameter = ref 0.0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let x = dist.((u * n) + v) in
      if x < !min_distance then min_distance := x;
      if x > !diameter then diameter := x
    done
  done;
  let sorted_rows =
    Pool.stage ctx pool "metric.sorted_rows" @@ fun () ->
    Pool.parallel_init pool n (fun u ->
        let row = Array.sub dist (u * n) n in
        Array.sort Float.compare row;
        row)
  in
  { graph; n; dist; sorted_rows; sssp;
    min_distance = !min_distance; diameter = !diameter }

let of_graph_unnormalized ?(pool = Pool.default ()) graph = build ~pool graph

let of_graph ?(pool = Pool.default ()) graph =
  let m = build ~pool graph in
  if Float.equal m.min_distance 1.0 then m
  else build ~pool (Graph.scale graph (1.0 /. m.min_distance))

let graph m = m.graph
let n m = m.n
let dist m u v = d m u v
let diameter m = m.diameter
let min_distance m = m.min_distance
let normalized_diameter m = m.diameter /. m.min_distance

let levels m =
  let delta = normalized_diameter m in
  let rec go i cover = if cover >= delta then i else go (i + 1) (2.0 *. cover) in
  go 0 1.0

let ball m ~center ~radius =
  let acc = ref [] in
  for v = m.n - 1 downto 0 do
    if d m center v <= radius then acc := v :: !acc
  done;
  !acc

let ball_size m ~center ~radius =
  let count = ref 0 in
  for v = 0 to m.n - 1 do
    if d m center v <= radius then incr count
  done;
  !count

let radius_of_size m u size =
  if size < 1 || size > m.n then
    invalid_arg "Metric.radius_of_size: size out of range";
  (* sorted_rows.(u).(k) is the distance to u's (k+1)-th closest node
     (including u itself at index 0), so r_u for a ball of [size] nodes is
     the entry at index size-1. *)
  m.sorted_rows.(u).(size - 1)

let nearest_k m u k =
  if k < 1 || k > m.n then invalid_arg "Metric.nearest_k: k out of range";
  let order = Array.init m.n Fun.id in
  Array.sort
    (fun a b ->
      let da = d m u a and db = d m u b in
      let c = Float.compare da db in
      if c <> 0 then c else Int.compare a b)
    order;
  Array.to_list (Array.sub order 0 k)

let nearest_in m u candidates =
  match candidates with
  | [] -> invalid_arg "Metric.nearest_in: empty candidate list"
  | first :: rest ->
    List.fold_left
      (fun best v ->
        let dv = d m u v and db = d m u best in
        if dv < db || (Float.equal dv db && v < best) then v else best)
      first rest

let next_hop m ~src ~dst =
  if src = dst then invalid_arg "Metric.next_hop: src = dst";
  Dijkstra.next_hop_toward m.sssp.(src) dst

(* One dynamic-programming sweep over the predecessor forest instead of n
   path reconstructions: a node's first hop is its own id when its
   predecessor is the source, else its predecessor's first hop. Edge
   weights are strictly positive, so dist strictly increases along every
   predecessor chain and processing nodes in ascending distance order sees
   each predecessor before its children. *)
let first_hops m ~src =
  let r = m.sssp.(src) in
  let hop = Array.make m.n (-1) in
  let order = Array.init m.n Fun.id in
  Array.sort
    (fun a b -> Float.compare r.Dijkstra.dist.(a) r.Dijkstra.dist.(b))
    order;
  Array.iter
    (fun v ->
      if v <> src then begin
        let p = r.Dijkstra.pred.(v) in
        if p = src then hop.(v) <- v
        else if p >= 0 then hop.(v) <- hop.(p)
      end)
    order;
  hop

let shortest_path m ~src ~dst = Dijkstra.path m.sssp.(src) dst
