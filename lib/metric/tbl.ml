let sorted_bindings ~cmp tbl =
  (* cr_lint: allow determinism -- the one blessed raw fold: bucket order is erased by the key sort on the next line *)
  let raw = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (a, _) (b, _) -> cmp a b) raw

let sorted_keys ~cmp tbl = List.map fst (sorted_bindings ~cmp tbl)

let iter_sorted ~cmp f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~cmp tbl)

let fold_sorted ~cmp f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ~cmp tbl)
