(** The shortest-path metric induced by a weighted graph (Section 2).

    A [Metric.t] packages a connected graph together with its all-pairs
    shortest-path distances, one shortest-path forest per source (for
    next-hop queries), and per-node distance ranks (for the ball-size radii
    r_u(j) used by the Packing Lemma).

    Following the paper's normalization, [of_graph] rescales edge weights so
    that the minimum pairwise distance is exactly 1; the normalized diameter
    Delta is then simply the largest pairwise distance. *)

type t

(** [of_graph g] builds the metric of [g], normalizing weights so the
    minimum pairwise distance is 1. Raises [Invalid_argument] if [g] is
    disconnected or has fewer than 2 nodes.

    The n per-source Dijkstra runs and the per-node distance-rank sorts fan
    out over [pool] (default {!Cr_par.Pool.default}); the result is
    bit-identical whatever the pool size — see [Cr_par.Pool] for the
    determinism contract. *)
val of_graph : ?pool:Cr_par.Pool.t -> Graph.t -> t

(** [of_graph_unnormalized g] skips the rescaling (used by tests that need
    to control weights exactly). *)
val of_graph_unnormalized : ?pool:Cr_par.Pool.t -> Graph.t -> t

(** [graph m] is the (possibly rescaled) underlying graph. *)
val graph : t -> Graph.t

(** [n m] is the number of nodes. *)
val n : t -> int

(** [dist m u v] is d(u, v). *)
val dist : t -> int -> int -> float

(** [diameter m] is the largest pairwise distance. *)
val diameter : t -> float

(** [min_distance m] is the smallest positive pairwise distance
    (1 after normalization, up to rounding). *)
val min_distance : t -> float

(** [normalized_diameter m] is Delta = diameter / min_distance. *)
val normalized_diameter : t -> float

(** [levels m] is ceil(log2 Delta), the number of net levels above level 0
    in the 2^i-net hierarchy: level indices run over [0 .. levels m]. *)
val levels : t -> int

(** [ball m ~center ~radius] is B_center(radius) = all nodes within distance
    [radius] of [center], sorted by id. *)
val ball : t -> center:int -> radius:float -> int list

(** [ball_size m ~center ~radius] is |B_center(radius)|. *)
val ball_size : t -> center:int -> radius:float -> int

(** [radius_of_size m u size] is r_u(j) for [size = 2^j]: the smallest
    radius [r] such that |B_u(r)| >= [size] (Section 2 uses exact equality;
    with distance ties the ball can overshoot, so we use the least radius
    reaching the required size). Raises [Invalid_argument] if
    [size > n] or [size < 1]. *)
val radius_of_size : t -> int -> int -> float

(** [nearest_k m u k] is the canonical ball of exactly [k] nodes around
    [u]: the [k] nodes closest to [u] (including [u] itself), ties broken by
    least id, sorted by (distance, id). The Packing Lemma's balls of size
    2^j are realized this way so that distance ties cannot inflate them. *)
val nearest_k : t -> int -> int -> int list

(** [nearest_in m u candidates] is the candidate minimizing d(u, -), ties
    broken by least id (the paper's tie-breaking rule for zooming
    sequences). Raises [Invalid_argument] on an empty candidate list. *)
val nearest_in : t -> int -> int list -> int

(** [next_hop m ~src ~dst] is the neighbor of [src] that begins the
    canonical shortest path from [src] to [dst]. Raises [Invalid_argument]
    if [src = dst]. *)
val next_hop : t -> src:int -> dst:int -> int

(** [shortest_path m ~src ~dst] is the canonical shortest path, inclusive of
    both endpoints. *)
val shortest_path : t -> src:int -> dst:int -> int list

(** [first_hops m ~src] is the whole next-hop row of [src] at once:
    a fresh array [h] with [h.(dst) = next_hop m ~src ~dst] for every
    [dst <> src] and [h.(src) = -1]. Computed in one O(n log n) sweep of
    the canonical shortest-path forest (agreeing hop-for-hop with
    {!next_hop}) — the bulk primitive the route-serving engine compiles
    full next-hop tables from. *)
val first_hops : t -> src:int -> int array
