type result = {
  dist : float array;
  pred : int array;
}

(* Relaxations break ties toward the smaller predecessor id so that the
   shortest-path forest is deterministic. *)
let run g s =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Dijkstra.run: source out of range";
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let heap = Priority_queue.create () in
  dist.(s) <- 0.0;
  Priority_queue.push heap ~priority:0.0 s;
  while not (Priority_queue.is_empty heap) do
    let d, u = Priority_queue.pop_min heap in
    if d <= dist.(u) then
      Graph.iter_neighbors g u (fun v w ->
          let cand = d +. w in
          if
            cand < dist.(v)
            || (Float.equal cand dist.(v) && pred.(v) >= 0 && u < pred.(v))
          then begin
            let improved = cand < dist.(v) in
            dist.(v) <- cand;
            pred.(v) <- u;
            if improved then Priority_queue.push heap ~priority:cand v
          end)
  done;
  { dist; pred }

let path r v =
  if not (Float.is_finite r.dist.(v)) then
    invalid_arg "Dijkstra.path: unreachable node";
  let rec build v acc =
    if r.pred.(v) = -1 then v :: acc else build r.pred.(v) (v :: acc)
  in
  build v []

let next_hop_toward r v =
  match path r v with
  | _ :: hop :: _ -> hop
  | _ -> invalid_arg "Dijkstra.next_hop_toward: destination is the source"

(* Lexicographic (distance, owner) relaxation keeps Voronoi cells
   prefix-closed; see the interface for why that matters. *)
let multi_source g sources =
  let n = Graph.n g in
  if sources = [] then invalid_arg "Dijkstra.multi_source: no sources";
  let dist = Array.make n infinity in
  let owner = Array.make n (-1) in
  let pred = Array.make n (-1) in
  let heap = Priority_queue.create () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then
        invalid_arg "Dijkstra.multi_source: source out of range";
      if 0.0 < dist.(s) || owner.(s) = -1 || s < owner.(s) then begin
        dist.(s) <- 0.0;
        owner.(s) <- s;
        pred.(s) <- -1;
        Priority_queue.push heap ~priority:0.0 s
      end)
    sources;
  while not (Priority_queue.is_empty heap) do
    let d, u = Priority_queue.pop_min heap in
    if d <= dist.(u) then
      Graph.iter_neighbors g u (fun v w ->
          let cand = d +. w in
          let better =
            cand < dist.(v)
            || (Float.equal cand dist.(v) && owner.(u) < owner.(v))
          in
          if better then begin
            dist.(v) <- cand;
            owner.(v) <- owner.(u);
            pred.(v) <- u;
            Priority_queue.push heap ~priority:cand v
          end)
  done;
  (dist, owner, pred)
