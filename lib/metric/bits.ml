let ceil_log2 k =
  if k <= 0 then invalid_arg "Bits.ceil_log2: nonpositive";
  let rec go b pow = if pow >= k then b else go (b + 1) (2 * pow) in
  go 0 1

let id_bits n = ceil_log2 n
let range_bits n = 2 * id_bits n
let distance_bits = 32

type tally = (string, int ref) Hashtbl.t

let create_tally () : tally = Hashtbl.create 8

let add tally ~component bits =
  match Hashtbl.find_opt tally component with
  | Some r -> r := !r + bits
  | None -> Hashtbl.replace tally component (ref bits)

let total tally =
  Tbl.fold_sorted ~cmp:String.compare (fun _ r acc -> acc + !r) tally 0

let components tally =
  List.map (fun (name, r) -> (name, !r))
    (Tbl.sorted_bindings ~cmp:String.compare tally)
