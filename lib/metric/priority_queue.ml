type t = {
  mutable prio : float array;
  mutable elt : int array;
  mutable size : int;
}

let initial_capacity = 16

let create () =
  { prio = Array.make initial_capacity 0.0;
    elt = Array.make initial_capacity 0;
    size = 0 }

let is_empty h = h.size = 0
let length h = h.size

let grow h =
  let capacity = Array.length h.prio in
  let prio = Array.make (2 * capacity) 0.0 in
  let elt = Array.make (2 * capacity) 0 in
  Array.blit h.prio 0 prio 0 h.size;
  Array.blit h.elt 0 elt 0 h.size;
  h.prio <- prio;
  h.elt <- elt

(* [less h i j] orders pairs by (priority, element) lexicographically so that
   extraction order is deterministic even with equal priorities. *)
let less h i j =
  h.prio.(i) < h.prio.(j)
  || (Float.equal h.prio.(i) h.prio.(j) && h.elt.(i) < h.elt.(j))

let swap h i j =
  let p = h.prio.(i) and e = h.elt.(i) in
  h.prio.(i) <- h.prio.(j);
  h.elt.(i) <- h.elt.(j);
  h.prio.(j) <- p;
  h.elt.(j) <- e

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && less h left !smallest then smallest := left;
  if right < h.size && less h right !smallest then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~priority x =
  if h.size = Array.length h.prio then grow h;
  h.prio.(h.size) <- priority;
  h.elt.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop_min h =
  if h.size = 0 then raise Not_found;
  let p = h.prio.(0) and e = h.elt.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.prio.(0) <- h.prio.(h.size);
    h.elt.(0) <- h.elt.(h.size);
    sift_down h 0
  end;
  (p, e)
