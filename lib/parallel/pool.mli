(** A small domain pool for the embarrassingly-parallel hot loops:
    per-source Dijkstra in [Metric.of_graph], per-node / per-ball table
    construction in the four schemes, and workload stretch evaluation.

    Design constraints (see the determinism properties in
    test/test_parallel.ml):

    - {b Determinism.} Work items are identified by their index; results are
      placed by index, never by completion order, so the output of
      [parallel_init pool n f] is element-for-element equal to
      [Array.init n f] whatever the pool size or scheduling. Chunk
      boundaries are fixed up front; only the assignment of chunks to
      domains varies between runs.
    - {b Pool size 1 is the sequential code path.} A pool of one domain
      spawns nothing and runs exactly [Array.init n f] on the calling
      domain, so a [CR_DOMAINS=1] run is the pre-parallelism code, not a
      degenerate parallel run.
    - {b Observability.} [Cr_obs] sinks are not thread-safe: all trace
      emissions must stay on the calling domain. The worker closures passed
      to this module must not emit trace events (the library's builders
      only emit spans/counters outside the parallel sections, on the
      calling domain's sink). Use {!stage} to record per-stage wall time.

    Domains are spawned per call ([Domain.spawn] costs microseconds; every
    parallel section in this code base is milliseconds or more), so a
    [t] is just a degree-of-parallelism capability — cheap to create and
    never needs teardown. *)

type t

(** [create ?domains ()] is a pool of [domains] workers (clamped to
    [1 .. 64]). When [domains] is omitted, the size comes from the
    [CR_DOMAINS] environment variable if set, else
    [Domain.recommended_domain_count ()]. Raises [Invalid_argument] on
    [domains < 1] or a malformed [CR_DOMAINS]. *)
val create : ?domains:int -> unit -> t

(** [default ()] is the process-wide pool, memoized on first use (so
    [CR_DOMAINS] is read once). Library entry points take [?pool] and
    fall back to this. *)
val default : unit -> t

(** [sequential] is the one-domain pool: [parallel_init sequential] is
    exactly [Array.init]. *)
val sequential : t

(** [domains t] is the pool size. *)
val domains : t -> int

(** [env_domains ()] parses [CR_DOMAINS] ([None] when unset or empty;
    raises [Invalid_argument] when set but not a positive integer). *)
val env_domains : unit -> int option

(** [parallel_init t n f] is [Array.init n f] evaluated on up to
    [domains t] domains. [f] must be safe to call from any domain and must
    not emit trace events. If any application of [f] raises, the first
    exception (in chunk order) is re-raised on the caller after all
    domains are joined. *)
val parallel_init : t -> int -> (int -> 'a) -> 'a array

(** [parallel_map t f arr] is [Array.map f arr] with the same contract as
    {!parallel_init}: results in input order, regardless of scheduling. *)
val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_map_list t f l] is [List.map f l], order-preserving. *)
val parallel_map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [stage ctx t name f] runs [f ()] inside a [Cr_obs] span
    ["par." ^ name] and emits ["par." ^ name ^ ".domains"] and
    ["par." ^ name ^ ".seconds"] counters — the per-stage wall-time record
    the parallel-scaling experiment (E17) and the [trace] bench read.
    Events are emitted on the calling domain only; a disabled [ctx] costs
    one branch. *)
val stage : Cr_obs.Trace.context -> t -> string -> (unit -> 'a) -> 'a
