module Trace = Cr_obs.Trace

type t = { domains : int }

let max_domains = 64
let clamp d = max 1 (min max_domains d)

let env_domains () =
  match Sys.getenv_opt "CR_DOMAINS" with
  | None | Some "" -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> Some (clamp d)
    | _ -> invalid_arg "Pool: CR_DOMAINS must be a positive integer")

let create ?domains () =
  match domains with
  | Some d when d >= 1 -> { domains = clamp d }
  | Some _ -> invalid_arg "Pool.create: domains must be >= 1"
  | None ->
    let d =
      match env_domains () with
      | Some d -> d
      | None -> Domain.recommended_domain_count ()
    in
    { domains = clamp d }

let default =
  let pool = lazy (create ()) in
  fun () -> Lazy.force pool

let sequential = { domains = 1 }
let domains t = t.domains

(* Chunk boundaries are a pure function of (n, workers), so the per-chunk
   result arrays — and therefore the concatenated output — are identical
   whichever domain claims which chunk. Chunks are claimed dynamically via
   an atomic counter for load balancing (per-item cost varies: Dijkstra
   sources are uniform but search-tree builds are not). *)
let parallel_init t n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if t.domains = 1 || n <= 1 then Array.init n f
  else begin
    let workers = min t.domains n in
    let chunk = max 1 (1 + ((n - 1) / (workers * 4))) in
    let nchunks = 1 + ((n - 1) / chunk) in
    let results = Array.make nchunks [||] in
    let failures = Array.make nchunks None in
    let next = Atomic.make 0 in
    let run_chunks () =
      (* The claim loop itself must not allocate — any per-iteration
         garbage here is multiplied by every worker domain and shows up
         as minor-GC pressure in the scaling curves. Chunk results are
         the task's output and are exempted where they are built. *)
      let[@cr.zero_alloc] rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then begin
          let lo = c * chunk in
          let len = min chunk (n - lo) in
          ((try results.(c) <- Array.init len (fun k -> f (lo + k))
            with e -> failures.(c) <- Some e)
          [@cr.alloc_ok "the chunk's result array is the task's output; \
                         the failure box is the cold error path"]);
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init (workers - 1) (fun _ -> Domain.spawn run_chunks)
    in
    run_chunks ();
    Array.iter Domain.join spawned;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.concat (Array.to_list results)
  end

let parallel_map t f arr = parallel_init t (Array.length arr) (fun i -> f arr.(i))

let parallel_map_list t f l =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ -> Array.to_list (parallel_map t f (Array.of_list l))

let stage ctx t name f =
  if not (Trace.enabled ctx) then f ()
  else begin
    let t0 = Trace.wall_clock () in
    Trace.span ctx ("par." ^ name) @@ fun () ->
    let r = f () in
    Trace.counter ctx ("par." ^ name ^ ".domains") (float_of_int t.domains);
    Trace.counter ctx ("par." ^ name ^ ".seconds") (Trace.wall_clock () -. t0);
    r
  end
