(** Keyed splitmix64 — the deterministic randomness source of the fault
    subsystem. Re-exports {!Cr_graphgen.Splitmix}, which owns the
    implementation (it sits below the sim layer, so workload generation
    can share the primitive); see that interface for the keying
    discipline and determinism contract. *)

type key = Cr_graphgen.Splitmix.key

(** [of_int seed] is the root key of a decision stream. *)
val of_int : int -> key

(** [mix k i] absorbs [i], splitting off a derived key. *)
val mix : key -> int -> key

(** [uniform k] draws in [0, 1), a pure function of [k]. *)
val uniform : key -> float

(** [int_below k bound] draws uniformly in [0, bound). *)
val int_below : key -> int -> int
