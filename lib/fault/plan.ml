module Graph = Cr_metric.Graph
module Network = Cr_proto.Network

type crash = {
  node : int;
  down_at : float;
  up_at : float;
}

type t = {
  seed : int;
  drop : float;
  duplicate : float;
  delay_prob : float;
  delay_factor : float;
  crashes : crash list;
  edge_drop : ((int * int) * float) list;
}

let check_prob name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Plan.make: %s must lie in [0, 1]" name)

let make ?(drop = 0.0) ?(duplicate = 0.0) ?(delay_prob = 0.0)
    ?(delay_factor = 0.0) ?(crashes = []) ?(edge_drop = []) ~seed () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "delay_prob" delay_prob;
  if delay_factor < 0.0 then
    invalid_arg "Plan.make: delay_factor must be non-negative";
  List.iter
    (fun c ->
      if c.node < 0 then invalid_arg "Plan.make: crash node out of range";
      if not (c.up_at > c.down_at && c.down_at >= 0.0) then
        invalid_arg "Plan.make: crash window must satisfy 0 <= down_at < up_at")
    crashes;
  List.iter (fun (_, p) -> check_prob "edge_drop" p) edge_drop;
  { seed; drop; duplicate; delay_prob; delay_factor; crashes; edge_drop }

let none ~seed = make ~seed ()

let is_null t =
  t.drop = 0.0 && t.duplicate = 0.0 && t.delay_prob = 0.0
  && t.crashes = [] && List.for_all (fun (_, p) -> p = 0.0) t.edge_drop

(* Decision tags: distinct last-mixed ints keep the drop / inflate /
   duplicate draws of one message independent. *)
let tag_drop = 0
let tag_inflate = 1
let tag_inflate_amount = 2
let tag_duplicate = 3
let tag_dup_copy = 4

let hooks t =
  let root = Splitmix.of_int t.seed in
  (* per-directed-edge message index: the only mutable hook state; calls
     happen in simulator delivery order, which is itself deterministic *)
  let counters : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let edge_drop : (int * int, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ((u, v), p) ->
      Hashtbl.replace edge_drop (u, v) p;
      Hashtbl.replace edge_drop (v, u) p)
    t.edge_drop;
  let windows : (int, (float * float) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let prev =
        match Hashtbl.find_opt windows c.node with Some l -> l | None -> []
      in
      Hashtbl.replace windows c.node ((c.down_at, c.up_at) :: prev))
    t.crashes;
  let inflate key delay =
    if
      t.delay_prob > 0.0
      && Splitmix.uniform (Splitmix.mix key tag_inflate) < t.delay_prob
    then
      delay
      *. (1.0
         +. (t.delay_factor
            *. Splitmix.uniform (Splitmix.mix key tag_inflate_amount)))
    else delay
  in
  let copies ~src ~dst ~delay =
    let i =
      match Hashtbl.find_opt counters (src, dst) with Some c -> c | None -> 0
    in
    Hashtbl.replace counters (src, dst) (i + 1);
    let key =
      Splitmix.mix (Splitmix.mix (Splitmix.mix root src) dst) i
    in
    let drop_p =
      match Hashtbl.find_opt edge_drop (src, dst) with
      | Some p -> p
      | None -> t.drop
    in
    if
      drop_p > 0.0 && Splitmix.uniform (Splitmix.mix key tag_drop) < drop_p
    then []
    else begin
      let first = inflate key delay in
      if
        t.duplicate > 0.0
        && Splitmix.uniform (Splitmix.mix key tag_duplicate) < t.duplicate
      then [ first; inflate (Splitmix.mix key tag_dup_copy) delay ]
      else [ first ]
    end
  in
  let down_until ~node ~time =
    match Hashtbl.find_opt windows node with
    | None -> None
    | Some ws ->
      List.fold_left
        (fun acc (d, u) ->
          if time >= d && time < u then
            match acc with
            | Some best when best >= u -> acc
            | _ -> Some u
          else acc)
        None ws
  in
  { Network.copies; down_until }

let describe t =
  let crash_part =
    match t.crashes with
    | [] -> ""
    | cs -> Printf.sprintf ", %d crash window(s)" (List.length cs)
  in
  Printf.sprintf
    "seed %d: drop %.3f, duplicate %.3f, delay %.3f (x<=%.2f)%s" t.seed
    t.drop t.duplicate t.delay_prob (1.0 +. t.delay_factor) crash_part

(* ---- static failure sampling for degraded-mode routing ---- *)

let sample_edge_failures ~seed ~rate g =
  check_prob "rate" rate;
  let root = Splitmix.mix (Splitmix.of_int seed) 0xED6E in
  List.filter_map
    (fun { Graph.u; v; _ } ->
      let lo, hi = if u < v then (u, v) else (v, u) in
      let key = Splitmix.mix (Splitmix.mix root lo) hi in
      if Splitmix.uniform key < rate then Some (lo, hi) else None)
    (Graph.edges g)

let sample_node_failures ?(protect = []) ~seed ~fraction n =
  check_prob "fraction" fraction;
  let root = Splitmix.mix (Splitmix.of_int seed) 0x0DE5 in
  let protected = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace protected v ()) protect;
  let out = ref [] in
  for v = n - 1 downto 0 do
    if
      (not (Hashtbl.mem protected v))
      && Splitmix.uniform (Splitmix.mix root v) < fraction
    then out := v :: !out
  done;
  !out
