(* The implementation lives in Cr_graphgen (below the sim layer) so that
   workload generation can share the same keyed stream primitive without
   creating a fault -> proto -> codec -> core -> sim dependency cycle.
   This module keeps the historical [Cr_fault.Splitmix] address. *)

include Cr_graphgen.Splitmix
