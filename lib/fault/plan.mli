(** Deterministic, seeded fault plans.

    A plan describes *which* faults happen: per-edge message drops,
    duplicate deliveries, delay inflation, and node crash/recover windows.
    [hooks] compiles it into the interposition points
    [Cr_proto.Network.fault_hooks] consults on every send and delivery.
    Every random decision is keyed splitmix64 over
    (seed, src, dst, per-edge message index) — see {!Splitmix} — so a plan
    replays identically across runs, pool sizes, and re-instantiations.

    The static samplers at the bottom pick edge/node failure sets for
    degraded-mode *routing* experiments (Cr_sim.Failures); they share the
    keyed-decision discipline but are independent of message traffic. *)

type crash = {
  node : int;
  down_at : float;
  up_at : float;  (** the node recovers (state intact) at [up_at] *)
}

type t = {
  seed : int;
  drop : float;  (** per-message drop probability *)
  duplicate : float;  (** probability a message gets one extra copy *)
  delay_prob : float;  (** probability a copy's delay is inflated *)
  delay_factor : float;
      (** inflated copies take [delay * (1 + U * delay_factor)], U in [0,1) *)
  crashes : crash list;
  edge_drop : ((int * int) * float) list;
      (** per-edge drop overrides (symmetric; override [drop] entirely) *)
}

(** [make ~seed ()] validates and builds a plan (all fault rates default
    to zero). Raises [Invalid_argument] on probabilities outside [0, 1],
    negative delay factors, or empty/negative crash windows. *)
val make :
  ?drop:float ->
  ?duplicate:float ->
  ?delay_prob:float ->
  ?delay_factor:float ->
  ?crashes:crash list ->
  ?edge_drop:((int * int) * float) list ->
  seed:int ->
  unit ->
  t

(** [none ~seed] is the fault-free plan — interposed but inert; the test
    suite asserts it is byte-identical to no plan at all. *)
val none : seed:int -> t

(** [is_null t] is true iff [t] can never perturb a run. *)
val is_null : t -> bool

(** [hooks t] compiles the plan into simulator hooks. Each call returns a
    fresh per-edge message-index state, so one plan value can drive many
    independent networks reproducibly. *)
val hooks : t -> Cr_proto.Network.fault_hooks

(** One-line human rendering for CLI output. *)
val describe : t -> string

(** [sample_edge_failures ~seed ~rate g] fails each undirected edge
    independently with probability [rate]; returned as [(u, v)] with
    [u < v], in [Graph.edges] order. *)
val sample_edge_failures :
  seed:int -> rate:float -> Cr_metric.Graph.t -> (int * int) list

(** [sample_node_failures ~seed ~fraction n] fails each node independently
    with probability [fraction], ascending; [protect] lists nodes exempt
    from failure (e.g. a route's endpoints). *)
val sample_node_failures :
  ?protect:int list -> seed:int -> fraction:float -> int -> int list
