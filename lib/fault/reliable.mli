(** Hardened at-least-once transport: ack/retransmit with capped
    exponential backoff, run over a fault {!Plan}.

    [runner] produces a [Cr_proto.Network.runner], so any protocol that
    executes through the runner interface (all of [Cr_proto]'s
    constructions) can run unchanged over a lossy, duplicating, delaying,
    crash-prone network. Every logical send is framed as a [Data] packet,
    acked by the receiver, and retransmitted by a local timer until acked
    or until [max_attempts] is exhausted — at which point the run fails
    with a typed [Network.Protocol_error] instead of hanging or returning
    wrong tables.

    The transport deliberately keeps {e no receiver-side dedup}: the
    protocols' improve-or-ignore guards make duplicate deliveries no-ops,
    and per-receiver dedup state would cost more memory than the tables
    being built. Handlers driven through this runner must therefore be
    idempotent — all of [Cr_proto]'s are, and the test suite asserts the
    resulting tables equal the fault-free ones. Timers (and kickoff boots)
    survive crash windows by deferral, so a crash-recover node resumes
    retransmitting where it left off (durable-state fail-recover model). *)

type budget = {
  max_attempts : int;  (** attempts per logical send before giving up *)
  rto : float;  (** first timeout, as a multiple of the edge round-trip *)
  backoff : float;  (** timeout growth factor per attempt (>= 1) *)
  rto_cap : float;  (** timeout ceiling, as a multiple of the round-trip *)
}

(** 16 attempts, first timeout 1.5 RTT, backoff 1.5, cap 16 RTT. *)
val default_budget : budget

(** Accumulated transport accounting across every execution of this
    transport value (reset with {!reset}). *)
type totals = {
  data : int;  (** first-attempt data sends *)
  retransmits : int;
  acks : int;
  raw_messages : int;  (** simulator deliveries, transport overhead included *)
  timer_fires : int;
  faults : Cr_proto.Network.fault_counts;
}

type t

(** [create ()] builds a transport; [plan] defaults to no faults (the
    transport still acks and retransmits — the zero-fault overhead is
    measurable), [budget] to {!default_budget}. [cost] (default
    disabled) accumulates CONGEST cost of the {e framed} traffic: every
    [Data]/[Ack] packet is charged its transport header (tag, 32-bit
    sequence number, source id) plus the inner message's measured bits,
    so a lossy plan's retransmissions appear as extra cost over a
    fault-free run of the same protocol. *)
val create :
  ?plan:Plan.t ->
  ?budget:budget ->
  ?jitter:int * float ->
  ?obs:Cr_obs.Trace.context ->
  ?cost:Cr_obs.Cost.t ->
  unit ->
  t

val totals : t -> totals
val reset : t -> unit

(** [runner t] is the transport as a protocol runner; pass it as [?via] to
    the [Cr_proto] constructions. The raw event budget is scaled from the
    inner [max_messages] so the caller's budget keeps its logical
    meaning. *)
val runner : t -> Cr_proto.Network.runner
