module Graph = Cr_metric.Graph
module Network = Cr_proto.Network

type budget = {
  max_attempts : int;
  rto : float;
  backoff : float;
  rto_cap : float;
}

let default_budget = { max_attempts = 16; rto = 1.5; backoff = 1.5; rto_cap = 16.0 }

type totals = {
  data : int;
  retransmits : int;
  acks : int;
  raw_messages : int;
  timer_fires : int;
  faults : Network.fault_counts;
}

let zero_totals =
  { data = 0; retransmits = 0; acks = 0; raw_messages = 0; timer_fires = 0;
    faults =
      { sent_dropped = 0; sent_duplicated = 0; sent_delayed = 0;
        crash_lost = 0; timers_deferred = 0 } }

type t = {
  plan : Plan.t option;
  budget : budget;
  jitter : (int * float) option;
  obs : Cr_obs.Trace.context option;
  cost : Cr_obs.Cost.t;
  mutable totals : totals;
}

let create ?plan ?budget ?jitter ?obs ?(cost = Cr_obs.Cost.null) () =
  let budget = Option.value budget ~default:default_budget in
  if budget.max_attempts < 1 then
    invalid_arg "Reliable.create: max_attempts must be at least 1";
  if budget.rto <= 0.0 || budget.backoff < 1.0 || budget.rto_cap < budget.rto
  then invalid_arg "Reliable.create: invalid timeout budget";
  { plan; budget; jitter; obs; cost; totals = zero_totals }

let totals t = t.totals

let reset t = t.totals <- zero_totals

(* The transport's framing around the inner protocol's messages. *)
type 'msg packet =
  | Boot of 'msg  (* kickoff injection, delivered by the simulator itself *)
  | Data of { seq : int; src : int; payload : 'msg }
  | Ack of { seq : int }
  | Resend of { seq : int }  (* local retransmission timer *)
  | Inner_timer of 'msg

type 'msg out_rec = {
  dst : int;
  weight : float;
  payload : 'msg;
  mutable attempt : int;
}

type ('msg, 'state) station = {
  mutable inner : 'state;
  mutable next_seq : int;
  outstanding : (int, 'msg out_rec) Hashtbl.t;
}

let add_faults a (b : Network.fault_counts) =
  { Network.sent_dropped = a.Network.sent_dropped + b.Network.sent_dropped;
    sent_duplicated = a.Network.sent_duplicated + b.Network.sent_duplicated;
    sent_delayed = a.Network.sent_delayed + b.Network.sent_delayed;
    crash_lost = a.Network.crash_lost + b.Network.crash_lost;
    timers_deferred = a.Network.timers_deferred + b.Network.timers_deferred }

(* Cost accounting sees the *framed* traffic: a [Data] or [Ack] packet
   costs its transport header (tag, 32-bit sequence number, source id)
   plus the inner payload's measured bits, so retransmissions and acks
   show up as extra cost over a fault-free run. Boot injections carry no
   framing (they never cross an edge); timers are never delivered as
   messages and cost nothing. *)
let measure_packet ~n inner =
  let module Wire = Cr_proto.Wire in
  let header f =
    Wire.measure (fun w ->
        Wire.push_tag w ~cases:2 0;
        f w)
  in
  fun (packet : _ packet) ->
    match packet with
    | Boot m | Inner_timer m -> inner m
    | Data { seq; src; payload } ->
      header (fun w ->
          Wire.push_seq w seq;
          Wire.push_node w ~n src)
      + inner payload
    | Ack { seq } -> header (fun w -> Wire.push_seq w seq)
    | Resend _ -> 0

let runner t =
  { Network.execute =
      (fun (type msg state) ?measure g ~protocol
           ~(init : int -> state)
           ~(handler :
              msg Network.actions -> self:int -> state -> msg -> state)
           ~(kickoff : (int * msg) list) ~max_messages ->
        let faults = Option.map Plan.hooks t.plan in
        let measure =
          Option.map (fun inner -> measure_packet ~n:(Graph.n g) inner) measure
        in
        let net =
          Network.create ?obs:t.obs ?jitter:t.jitter ?faults ~cost:t.cost
            ?measure g
            ~init:(fun v ->
              ({ inner = init v; next_seq = 0; outstanding = Hashtbl.create 8 }
                : (msg, state) station))
        in
        let rto_delay weight attempt =
          let rtt = 2.0 *. weight in
          let mult =
            t.budget.rto
            *. (t.budget.backoff ** float_of_int (attempt - 1))
          in
          rtt *. Float.min mult t.budget.rto_cap
        in
        let stats_now now =
          { Network.messages =
              Array.fold_left ( + ) 0 (Network.deliveries net);
            makespan = now }
        in
        let give_up ~self ~now (rec_ : msg out_rec) =
          raise
            (Network.Protocol_error
               { protocol;
                 node = Some self;
                 stats = stats_now now;
                 detail =
                   Printf.sprintf
                     "retransmit budget exhausted after %d attempts (to \
                      node %d)"
                     rec_.attempt rec_.dst })
        in
        let outer (actions : msg packet Network.actions) ~self
            (st : (msg, state) station) packet =
          let reliable_send dst (msg : msg) =
            let weight =
              match Graph.edge_weight g self dst with
              | Some w -> w
              | None -> invalid_arg "Reliable: send to a non-neighbor"
            in
            let seq = st.next_seq in
            st.next_seq <- seq + 1;
            Hashtbl.replace st.outstanding seq
              { dst; weight; payload = msg; attempt = 1 };
            t.totals <- { t.totals with data = t.totals.data + 1 };
            actions.Network.send dst (Data { seq; src = self; payload = msg });
            actions.Network.timer ~delay:(rto_delay weight 1) (Resend { seq })
          in
          let wrapped =
            { Network.now = actions.Network.now;
              send = reliable_send;
              timer =
                (fun ~delay msg -> actions.Network.timer ~delay (Inner_timer msg))
            }
          in
          (match packet with
          | Boot m -> st.inner <- handler wrapped ~self st.inner m
          | Inner_timer m -> st.inner <- handler wrapped ~self st.inner m
          | Data { seq; src; payload } ->
            (* ack first, then deliver: the inner handler may raise, and
               an un-acked duplicate storm helps nobody diagnose it *)
            t.totals <- { t.totals with acks = t.totals.acks + 1 };
            actions.Network.send src (Ack { seq });
            st.inner <- handler wrapped ~self st.inner payload
          | Ack { seq } -> Hashtbl.remove st.outstanding seq
          | Resend { seq } -> (
            match Hashtbl.find_opt st.outstanding seq with
            | None -> ()  (* acked since the timer was armed *)
            | Some rec_ ->
              if rec_.attempt >= t.budget.max_attempts then
                give_up ~self ~now:actions.Network.now rec_
              else begin
                rec_.attempt <- rec_.attempt + 1;
                t.totals <-
                  { t.totals with retransmits = t.totals.retransmits + 1 };
                actions.Network.send rec_.dst
                  (Data { seq; src = self; payload = rec_.payload });
                actions.Network.timer
                  ~delay:(rto_delay rec_.weight rec_.attempt)
                  (Resend { seq })
              end));
          st
        in
        List.iter
          (fun (dst, msg) -> Network.inject net ~dst (Boot msg))
          kickoff;
        (* every logical send costs at most max_attempts data deliveries,
           as many acks and as many timer fires — scale the raw event
           budget so the *inner* budget keeps its meaning *)
        let raw_budget =
          1000 + (((3 * t.budget.max_attempts) + 2) * max_messages)
        in
        let stats =
          Network.run ~protocol net ~handler:outer ~max_messages:raw_budget
        in
        t.totals <-
          { t.totals with
            raw_messages = t.totals.raw_messages + stats.Network.messages;
            timer_fires = t.totals.timer_fires + Network.timer_events net;
            faults = add_faults t.totals.faults (Network.fault_counts net) };
        let states =
          Array.init (Graph.n g) (fun v ->
              let st : (msg, state) station = Network.state net v in
              (* quiescence with an unacked send cannot happen: every
                 outstanding record keeps a live Resend timer until it is
                 acked or the attempt budget raises *)
              assert (Hashtbl.length st.outstanding = 0);
              st.inner)
        in
        (states, stats)) }
